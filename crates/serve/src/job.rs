//! The unit of work flowing through the daemon.

use std::path::PathBuf;
use std::sync::mpsc;

use crate::protocol::FaultSpec;

/// Where a finished job's response goes.
#[derive(Debug, Clone)]
pub enum JobSink {
    /// A connection thread is blocked on this channel; send the encoded
    /// response frame `(kind, payload)`. A send error means the client
    /// hung up — the result is still journaled and cached.
    Tcp(mpsc::Sender<(u8, Vec<u8>)>),
    /// A job-directory submission: write `<base>.v` + `<base>.json` on
    /// success, `<base>.err.json` on failure.
    Dir {
        /// Output path without extension.
        base: PathBuf,
    },
    /// A journal-recovered job whose requester is gone: run it for its
    /// side effects (cache warm + journal completion), drop the response.
    Discard,
}

/// One admitted synthesis job.
#[derive(Debug)]
pub struct Job {
    /// Journal id — unique across daemon restarts.
    pub id: u64,
    /// Design name (client override or netlist-derived); display only.
    pub name: String,
    /// Pass script; empty means the server default.
    pub script: String,
    /// Raw netlist bytes (BLIF or AIGER, sniffed by content).
    pub data: Vec<u8>,
    /// Chaos fault request (chaos builds only).
    pub fault: Option<FaultSpec>,
    /// Response destination.
    pub sink: JobSink,
    /// Retry generation, 0 for the first run.
    pub attempt: u32,
}
