//! Bounded admission queue with a delayed-retry lane.
//!
//! The ready lane is the backpressure surface: [`JobQueue::try_push`]
//! refuses once `capacity` jobs are waiting, and the caller sheds the job
//! with a BUSY response instead of buffering it — daemon memory stays
//! bounded no matter how fast clients submit. The retry lane is a separate
//! min-heap of `(due, job)` pairs that *bypasses* the capacity check:
//! retries are jobs the server already accepted (and journaled), so
//! shedding them would break the at-least-once promise; their population is
//! bounded by `capacity × retry_limit` anyway.
//!
//! [`JobQueue::pop`] blocks until a ready job, a due retry, or close. After
//! [`JobQueue::close`], pops drain what is already queued and then return
//! `None` — the graceful-drain contract: accepted work finishes (or is
//! cancelled by the drain grace timer), new work is refused.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use crate::sync::time::Instant;
use crate::sync::{Condvar, Mutex};

use crate::job::Job;

struct Delayed {
    due: Instant,
    seq: u64,
    job: Job,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

#[derive(Default)]
struct State {
    ready: VecDeque<Job>,
    delayed: BinaryHeap<Reverse<Delayed>>,
    seq: u64,
    closed: bool,
}

/// The shared admission queue. See the [module docs](self).
pub struct JobQueue {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (retries excluded).
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admit a job, or hand it back when the ready lane is full or the
    /// queue is closed (the caller sheds it with BUSY).
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.ready.len() >= self.capacity {
            return Err(job);
        }
        s.ready.push_back(job);
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Requeue an already-accepted job after `delay`. Bypasses the
    /// capacity check; refused only after close (the job is handed back so
    /// the caller can fail it as cancelled).
    pub fn push_retry(&self, job: Job, delay: Duration) -> Result<(), Job> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(job);
        }
        let seq = s.seq;
        s.seq += 1;
        s.delayed.push(Reverse(Delayed {
            due: Instant::now() + delay,
            seq,
            job,
        }));
        drop(s);
        // Wake a popper so it can re-arm its wait for the new due time.
        self.cv.notify_one();
        Ok(())
    }

    /// Number of jobs waiting in the ready lane (the backpressure signal).
    pub fn ready_len(&self) -> usize {
        self.state.lock().unwrap().ready.len()
    }

    /// Block until a job is available; `None` once closed and fully
    /// drained (including pending retries).
    pub fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            // Promote every due retry ahead of fresh admissions: a retry
            // is older than anything in the ready lane.
            while s.delayed.peek().is_some_and(|d| d.0.due <= now) {
                let Reverse(d) = s.delayed.pop().unwrap();
                s.ready.push_front(d.job);
            }
            if let Some(job) = s.ready.pop_front() {
                return Some(job);
            }
            if s.closed && s.delayed.is_empty() {
                return None;
            }
            s = match s.delayed.peek().map(|d| d.0.due) {
                Some(due) => {
                    let wait = due.saturating_duration_since(now);
                    self.cv.wait_timeout(s, wait).unwrap().0
                }
                None => self.cv.wait(s).unwrap(),
            };
        }
    }

    /// Stop admitting; wake every popper so the drain can complete.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }
}

// Unit tests drive the queue outside a model schedule, so they only make
// sense against the std primitives; tests/model_gate.rs covers the model
// configuration.
#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;
    use crate::job::{Job, JobSink};
    use std::sync::Arc;

    fn job(id: u64) -> Job {
        Job {
            id,
            name: format!("j{id}"),
            script: String::new(),
            data: Vec::new(),
            fault: None,
            sink: JobSink::Discard,
            attempt: 0,
        }
    }

    #[test]
    fn capacity_zero_sheds_everything() {
        let q = JobQueue::new(0);
        assert!(q.try_push(job(1)).is_err());
    }

    #[test]
    fn fifo_within_capacity_then_sheds() {
        let q = JobQueue::new(2);
        assert!(q.try_push(job(1)).is_ok());
        assert!(q.try_push(job(2)).is_ok());
        let shed = q.try_push(job(3)).unwrap_err();
        assert_eq!(shed.id, 3);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn retries_bypass_capacity_and_come_due() {
        let q = JobQueue::new(0);
        assert!(q.push_retry(job(7), Duration::from_millis(5)).is_ok());
        let got = q.pop().unwrap();
        assert_eq!(got.id, 7);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(job(1)).unwrap();
        q.close();
        assert!(q.try_push(job(2)).is_err(), "no admissions after close");
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(job(9)).unwrap();
        assert_eq!(t.join().unwrap(), Some(9));
    }
}
