//! The `xsfq-serve` daemon binary. See the crate docs for the protocol
//! and operational guide; `xsfq-serve --help` for flags.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use xsfq_aig::pass::PassGuards;
use xsfq_serve::{signal, CheckLevel, ServeConfig, Server};

const USAGE: &str = "\
xsfq-serve — crash-tolerant xSFQ synthesis daemon

USAGE:
    xsfq-serve --state-dir DIR [OPTIONS]

OPTIONS:
    --state-dir DIR        journal + spool directory (required)
    --addr HOST:PORT       listen address (default 127.0.0.1:0; port 0 = ephemeral)
    --watch-dir DIR        poll DIR for dropped-in .blif/.aag/.aig jobs
    --out-dir DIR          result directory for watched jobs (default STATE/results)
    --shards N             worker shards (default 2)
    --threads-per-job N    executor threads per shard (default XSFQ_THREADS or hardware)
    --queue-capacity N     admission queue depth before shedding (default 64)
    --max-connections N    concurrent TCP connections (default 64)
    --deadline-ms MS       per-job wall-clock deadline (default 60000; 0 = none)
    --retry-limit N        retries for transient failures (default 2)
    --retry-base-ms MS     first retry delay, doubles per attempt (default 20)
    --cache-budget BYTES   result-cache byte budget (default 67108864; 0 = off)
    --script SCRIPT        default pass script (default \"standard\")
    --check LEVEL          static checking: off | stage | paranoid (default stage)
    --max-growth FACTOR    per-pass node-growth guard (off by default)
    --pass-budget-ms MS    per-pass wall-time guard (off by default)
    --drain-grace-ms MS    drain grace before cancelling in-flight jobs (default 5000)
    --help                 print this text
";

fn parse_args() -> Result<ServeConfig, String> {
    let mut args = std::env::args().skip(1);
    let mut state_dir: Option<PathBuf> = None;
    let mut cfg_overrides: Vec<(String, String)> = Vec::new();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        if flag == "--state-dir" {
            state_dir = Some(PathBuf::from(value));
        } else {
            cfg_overrides.push((flag, value));
        }
    }
    let state_dir = state_dir.ok_or_else(|| "missing required --state-dir".to_string())?;
    let mut cfg = ServeConfig::new(state_dir);
    let num = |v: &str, flag: &str| {
        v.parse::<u64>()
            .map_err(|_| format!("{flag} expects a number, got `{v}`"))
    };
    for (flag, v) in cfg_overrides {
        match flag.as_str() {
            "--addr" => cfg.addr = v,
            "--watch-dir" => cfg.watch_dir = Some(PathBuf::from(v)),
            "--out-dir" => cfg.out_dir = Some(PathBuf::from(v)),
            "--shards" => cfg.shards = num(&v, &flag)? as usize,
            "--threads-per-job" => cfg.threads_per_job = num(&v, &flag)? as usize,
            "--queue-capacity" => cfg.queue_capacity = num(&v, &flag)? as usize,
            "--max-connections" => cfg.max_connections = num(&v, &flag)? as usize,
            "--deadline-ms" => {
                let ms = num(&v, &flag)?;
                cfg.job_deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--retry-limit" => cfg.retry_limit = num(&v, &flag)? as u32,
            "--retry-base-ms" => cfg.retry_base = Duration::from_millis(num(&v, &flag)?),
            "--cache-budget" => cfg.cache_budget = num(&v, &flag)? as usize,
            "--script" => cfg.default_script = v,
            "--check" => {
                cfg.check = match v.as_str() {
                    "off" => CheckLevel::Off,
                    "stage" => CheckLevel::Stage,
                    "paranoid" => CheckLevel::Paranoid,
                    other => {
                        return Err(format!("--check expects off|stage|paranoid, got `{other}`"))
                    }
                };
            }
            "--max-growth" => {
                let factor = v
                    .parse::<f64>()
                    .map_err(|_| format!("--max-growth expects a float, got `{v}`"))?;
                cfg.guards = PassGuards {
                    max_growth: Some(factor),
                    ..cfg.guards
                };
            }
            "--pass-budget-ms" => {
                cfg.guards = PassGuards {
                    wall_budget: Some(Duration::from_millis(num(&v, &flag)?)),
                    ..cfg.guards
                };
            }
            "--drain-grace-ms" => cfg.drain_grace = Duration::from_millis(num(&v, &flag)?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    signal::install();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The test harness (and any supervisor) reads the bound address from
    // this line; keep its shape stable.
    println!("xsfq-serve listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    while !signal::triggered() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("xsfq-serve: termination signal, draining");
    server.shutdown();
    eprintln!("xsfq-serve: drained, bye");
    ExitCode::SUCCESS
}
