//! The daemon: admission, shard workers, TCP listener, directory watcher,
//! graceful drain. See the [crate docs](crate) for the operational guide.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use xsfq_aig::digest::canonical_digest;
use xsfq_aig::io::read_netlist_auto;
use xsfq_aig::pass::{PassArenas, PassGuards, Script};
use xsfq_core::SynthesisFlow;
use xsfq_exec::{CancelToken, ThreadPool};
use xsfq_lint::{has_errors, lint_aig, render_json, CheckLevel};
use xsfq_netlist::writers::write_verilog;
use xsfq_timing::TimingOptions;

use crate::cache::{CacheKey, ResultCache};
use crate::job::{Job, JobSink};
use crate::journal::Journal;
use crate::protocol::{
    self, read_frame, write_frame, SubmitRequest, KIND_BUSY, KIND_ERR, KIND_OK, KIND_PING,
    KIND_PONG, KIND_STATS, KIND_STATS_OK, KIND_SUBMIT,
};
use crate::queue::JobQueue;

/// Jobs below this AND count run under `scoped_budget(1)`: the sequential
/// path beats the fan-out/join overhead of a parallel section for graphs
/// this small, and results are bit-identical either way.
const SMALL_JOB_ANDS: usize = 512;

/// Daemon configuration. Construct with [`ServeConfig::new`] and override
/// fields as needed; every field has a production-sane default.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP listen address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Journal + spool directory; created if missing. The daemon's crash
    /// recovery replays from here, so it must survive restarts.
    pub state_dir: PathBuf,
    /// Directory to poll for dropped-in `.blif` / `.aag` / `.aig` jobs.
    pub watch_dir: Option<PathBuf>,
    /// Where directory jobs' results land (`<design>.v` + `<design>.json`,
    /// or `<design>.err.json`). Defaults to `state_dir/results`.
    pub out_dir: Option<PathBuf>,
    /// Worker shards; each owns one executor pool and a warm arena set.
    pub shards: usize,
    /// Executor threads per shard pool.
    pub threads_per_job: usize,
    /// Admission-queue capacity. Beyond it, submissions shed with BUSY.
    pub queue_capacity: usize,
    /// Concurrent TCP connections; excess connections get one BUSY frame.
    pub max_connections: usize,
    /// Per-job wall-clock deadline (counted from job start, not submit).
    pub job_deadline: Option<Duration>,
    /// Retries for transient failures (panics, guard trips). 0 disables.
    pub retry_limit: u32,
    /// First retry delay; doubles per attempt.
    pub retry_base: Duration,
    /// Result-cache byte budget; 0 disables caching.
    pub cache_budget: usize,
    /// Script used when a submission leaves its script field empty.
    pub default_script: String,
    /// Per-pass resource guards applied to every job.
    pub guards: PassGuards,
    /// Static checking level for every job (see [`CheckLevel`]): the
    /// default `Stage` lints submissions at admission (ill-formed netlists
    /// are rejected with structured diagnostics instead of occupying a
    /// shard) and validates each job's intermediate structures between
    /// flow stages. `Off` restores the unchecked fast path.
    pub check: CheckLevel,
    /// Optional timing stage for every job (see `xsfq_core::FlowOptions::
    /// timing`): static arrival/slack analysis plus slack-matching JTL
    /// insertion on the mapped netlist; the verdict's report JSON then
    /// carries a `timing` summary. `None` (the default) keeps results
    /// byte-identical to earlier releases. The configuration joins the
    /// result-cache fingerprint, so flipping it can never replay a
    /// differently-timed cached netlist.
    pub timing: Option<TimingOptions>,
    /// How long a drain lets in-flight jobs finish before cancelling them.
    pub drain_grace: Duration,
}

fn env_threads() -> usize {
    std::env::var("XSFQ_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(2, |n| n.get()))
}

impl ServeConfig {
    /// Defaults: ephemeral localhost port, 2 shards, `XSFQ_THREADS` (or
    /// hardware) threads per shard, 64-deep queue, 60 s deadline, 2
    /// retries, 64 MiB cache, `standard` script, 5 s drain grace.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: state_dir.into(),
            watch_dir: None,
            out_dir: None,
            shards: 2,
            threads_per_job: env_threads(),
            queue_capacity: 64,
            max_connections: 64,
            job_deadline: Some(Duration::from_secs(60)),
            retry_limit: 2,
            retry_base: Duration::from_millis(20),
            cache_budget: 64 << 20,
            default_script: "standard".into(),
            guards: PassGuards::none(),
            check: CheckLevel::Stage,
            timing: None,
            drain_grace: Duration::from_secs(5),
        }
    }
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
}

struct Shared {
    queue: JobQueue,
    journal: Journal,
    cache: ResultCache,
    stats: Stats,
    /// Drain cancellation: fired by the grace timer, observed by every
    /// in-flight job through its flow's cancel token.
    cancel: CancelToken,
    stop: AtomicBool,
    draining: AtomicBool,
    connections: AtomicUsize,
    max_connections: usize,
    threads_per_job: usize,
    retry_limit: u32,
    retry_base: Duration,
    job_deadline: Option<Duration>,
    guards: PassGuards,
    check: CheckLevel,
    timing: Option<TimingOptions>,
    /// Cache-key component covering everything job-independent the result
    /// depends on (guards, deadline presence, flow defaults).
    guard_fp: String,
    default_script: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The structured failure verdict (`xsfq-serve-verdict/1`).
fn verdict_json(
    kind: &str,
    name: &str,
    pass: Option<&str>,
    attempts: u32,
    elapsed_ms: u64,
    detail: &str,
) -> String {
    verdict_json_diags(kind, name, pass, attempts, elapsed_ms, detail, "[]")
}

/// [`verdict_json`] with lint findings attached: `diags` is a pre-rendered
/// `xsfq-lint-diags/1` JSON array (see [`render_json`]), `[]` when none.
#[allow(clippy::too_many_arguments)]
fn verdict_json_diags(
    kind: &str,
    name: &str,
    pass: Option<&str>,
    attempts: u32,
    elapsed_ms: u64,
    detail: &str,
    diags: &str,
) -> String {
    let pass = match pass {
        Some(p) => format!("\"{}\"", json_escape(p)),
        None => "null".into(),
    };
    format!(
        "{{\"schema\":\"xsfq-serve-verdict/1\",\"name\":\"{}\",\"kind\":\"{}\",\
         \"pass\":{},\"attempts\":{},\"elapsed_ms\":{},\"detail\":\"{}\",\"diags\":{}}}",
        json_escape(name),
        json_escape(kind),
        pass,
        attempts,
        elapsed_ms,
        json_escape(detail),
        diags
    )
}

fn busy_hint_ms(queue_len: usize) -> u32 {
    (50 + 25 * queue_len as u32).min(2000)
}

enum Admit {
    Queued,
    Busy(u32),
    Rejected {
        msg: String,
        /// Pre-rendered `xsfq-lint-diags/1` JSON array; `[]` for
        /// rejections that carry no lint findings.
        diags: String,
    },
}

impl Admit {
    fn rejected(msg: impl Into<String>) -> Admit {
        Admit::Rejected {
            msg: msg.into(),
            diags: "[]".into(),
        }
    }
}

/// The single admission path: validate, make durable, enqueue. Shared by
/// TCP submissions, directory drops, and journal recovery (`recovered`
/// jobs skip re-journaling — their `S` record already exists).
fn admit(sh: &Arc<Shared>, request: SubmitRequest, sink: JobSink, recovered: Option<u64>) -> Admit {
    if sh.draining.load(Ordering::SeqCst) && recovered.is_none() {
        return Admit::Busy(busy_hint_ms(sh.queue.ready_len()));
    }
    if let Some(f) = request.fault {
        if !(1..=3).contains(&f.kind) {
            return Admit::rejected(format!("unknown fault kind {}", f.kind));
        }
        if !cfg!(feature = "chaos") {
            return Admit::rejected("fault injection requires a chaos build");
        }
    }
    let script = if request.script.is_empty() {
        sh.default_script.clone()
    } else {
        request.script.clone()
    };
    if let Err(e) = Script::parse(&script) {
        return Admit::rejected(format!("bad script: {e}"));
    }
    // Admission-time lint: a submission that parses but is structurally
    // ill-formed (duplicate ports, output shadowing an input, …) would
    // fail deep inside the flow — or worse, synthesize a netlist with
    // colliding dual-rail port names. Reject it here with the findings
    // attached. Bytes that do not parse at all stay on the in-job path,
    // which answers with the richer per-format `parse` verdict.
    if sh.check >= CheckLevel::Stage {
        if let Ok(aig) = read_netlist_auto(&request.data) {
            let diags = lint_aig(&aig);
            if has_errors(&diags) {
                return Admit::Rejected {
                    msg: format!("submission failed lint with {} finding(s)", diags.len()),
                    diags: render_json(&diags),
                };
            }
        }
    }
    let id = match recovered {
        Some(id) => id,
        None => {
            let id = sh.journal.next_id();
            let dir_base = match &sink {
                JobSink::Dir { base } => Some(base.as_path()),
                _ => None,
            };
            // Durability before acceptance: a job the client saw admitted
            // must be recoverable. A journal write failure refuses the job.
            if let Err(e) = sh.journal.record_submit(id, &request, dir_base) {
                return Admit::rejected(format!("journal write failed: {e}"));
            }
            id
        }
    };
    let job = Job {
        id,
        name: request.name,
        script,
        data: request.data,
        fault: request.fault,
        sink,
        attempt: 0,
    };
    let pushed = if recovered.is_some() {
        // Recovered jobs were accepted by a previous incarnation; they
        // bypass the capacity check like retries do.
        sh.queue.push_retry(job, Duration::ZERO)
    } else {
        sh.queue.try_push(job)
    };
    match pushed {
        Ok(()) => {
            // Ordering: Relaxed — stats counters are monotonic telemetry;
            // any cross-thread invariant (e.g. "counter bumped before the
            // journal's D record is observable") rides on the journal's
            // lock, never on the counters' own ordering. Pinned by the
            // serve model_gate's PR-7 regression pair.
            sh.stats.accepted.fetch_add(1, Ordering::Relaxed);
            Admit::Queued
        }
        Err(job) => {
            // Ordering: Relaxed — telemetry, see above.
            sh.stats.shed.fetch_add(1, Ordering::Relaxed);
            let _ = sh.journal.record_done(job.id, "shed");
            Admit::Busy(busy_hint_ms(sh.queue.ready_len()))
        }
    }
}

/// Send a finished job's response to wherever it goes.
fn deliver(sink: &JobSink, kind: u8, body: &[u8]) {
    match sink {
        JobSink::Tcp(tx) => {
            // A send error means the client hung up; the work is still
            // journaled and cached, which is all at-least-once promises.
            let _ = tx.send((kind, body.to_vec()));
        }
        JobSink::Dir { base } => {
            let write = |path: PathBuf, bytes: &[u8]| {
                if let Some(parent) = path.parent() {
                    let _ = fs::create_dir_all(parent);
                }
                let _ = fs::write(path, bytes);
            };
            match protocol::decode_response(kind, body) {
                Ok(protocol::Response::Ok {
                    netlist, report, ..
                }) => {
                    write(base.with_extension("v"), &netlist);
                    write(base.with_extension("json"), &report);
                }
                Ok(protocol::Response::Err { verdict, .. }) => {
                    write(base.with_extension("err.json"), &verdict);
                }
                _ => {}
            }
        }
        JobSink::Discard => {}
    }
}

/// Settle a successful job: counters, then journal, then response — so
/// anyone who observes the durable `D` record (or reacts to the response)
/// already sees the updated stats.
fn finish_ok(sh: &Shared, job: &Job, body: &[u8]) {
    // Ordering: Relaxed — the counter-before-journal *program* order is
    // what carries the invariant (observers of the durable D record see
    // the bump via the journal's lock); the counter itself publishes
    // nothing. The serve model_gate PR-7 regression pins this shape.
    sh.stats.completed.fetch_add(1, Ordering::Relaxed);
    let _ = sh.journal.record_done(job.id, "ok");
    deliver(&job.sink, KIND_OK, body);
}

/// Settle a failed job the same way.
fn finish_err(sh: &Shared, job: &Job, kind: &str, verdict: &str) {
    // Ordering: Relaxed — same counter-before-journal shape as finish_ok.
    sh.stats.failed.fetch_add(1, Ordering::Relaxed);
    let _ = sh.journal.record_done(job.id, "err");
    deliver(
        &job.sink,
        KIND_ERR,
        &protocol::encode_err(kind, verdict.as_bytes()),
    );
}

/// Run one job to a terminal state (or requeue it for retry).
fn process(sh: &Arc<Shared>, pool: &ThreadPool, arenas: &mut PassArenas, mut job: Job) {
    let aig = match read_netlist_auto(&job.data) {
        Ok(aig) => aig,
        Err(e) => {
            let v = verdict_json("parse", &job.name, None, job.attempt, 0, &e.to_string());
            finish_err(sh, &job, "parse", &v);
            return;
        }
    };
    if job.name.is_empty() {
        job.name = aig.name().to_string();
    }
    // Fault-injected jobs bypass the cache in both directions: a hit would
    // skip synthesis — and the requested fault with it — and a faulted
    // run's output must never be served to healthy resubmissions.
    let faulted = job.fault.is_some();
    let key = CacheKey {
        digest: canonical_digest(&aig),
        script: job.script.clone(),
        guards: sh.guard_fp.clone(),
    };
    if !faulted {
        if let Some(segments) = sh.cache.get(&key) {
            finish_ok(sh, &job, &protocol::encode_ok_body(true, &segments));
            return;
        }
    }

    let mut flow = match SynthesisFlow::new()
        .guards(sh.guards.clone())
        .check(sh.check)
        .cancel_token(sh.cancel.clone())
        .script_str(&job.script)
    {
        Ok(flow) => flow,
        // Admission validated the script, so this only fires when a
        // recovered spool carries a script a newer build rejects.
        Err(e) => {
            let v = verdict_json("script", &job.name, None, job.attempt, 0, &e.to_string());
            finish_err(sh, &job, "script", &v);
            return;
        }
    };
    if let Some(d) = sh.job_deadline {
        flow = flow.job_deadline(d);
    }
    if let Some(t) = &sh.timing {
        flow = flow.timing(t.clone());
    }
    #[cfg(feature = "chaos")]
    if let Some(f) = job.fault {
        use xsfq_aig::chaos::{FaultKind, FaultPlan};
        let kind = match f.kind {
            1 => FaultKind::Panic,
            2 => FaultKind::Stall,
            _ => FaultKind::GuardTrip,
        };
        flow = flow.chaos_plan(FaultPlan::new().fault(0, f.pass as usize, kind));
    }

    // Tiny designs take the sequential path: the budget guard drops at the
    // end of the job, restoring the shard's full parallelism.
    let _budget = (aig.num_ands() < SMALL_JOB_ANDS).then(|| pool.scoped_budget(1));
    match flow.run_job(&aig, pool, arenas) {
        Ok(result) => {
            let mut netlist = Vec::new();
            write_verilog(result.netlist(), &mut netlist).expect("write netlist to memory");
            let report = result.report.to_json();
            let segments = protocol::encode_result_segments(&netlist, report.as_bytes());
            if !faulted {
                sh.cache.put(key, segments.clone());
            }
            finish_ok(sh, &job, &protocol::encode_ok_body(false, &segments));
        }
        Err(e) => {
            if e.kind.is_transient() && job.attempt < sh.retry_limit {
                job.attempt += 1;
                let backoff = sh
                    .retry_base
                    .saturating_mul(1u32 << (job.attempt - 1).min(16));
                // Ordering: Relaxed — telemetry counter (see admit).
                sh.stats.retries.fetch_add(1, Ordering::Relaxed);
                match sh.queue.push_retry(job, backoff) {
                    Ok(()) => return,
                    // Queue closed mid-drain: fail the job as cancelled.
                    Err(back) => job = back,
                }
            }
            let kind = e.kind.name();
            let v = verdict_json(
                kind,
                &job.name,
                e.pass.as_deref(),
                job.attempt,
                e.elapsed.as_millis() as u64,
                &e.to_string(),
            );
            finish_err(sh, &job, kind, &v);
        }
    }
}

fn worker_loop(sh: Arc<Shared>) {
    let pool = ThreadPool::new(sh.threads_per_job);
    // Warm arenas live for the shard's lifetime: every job after the first
    // reuses the cut arena and synthesis memo tables.
    let mut arenas = PassArenas::default();
    while let Some(job) = sh.queue.pop() {
        // The shard thread must survive any single job: a panic that
        // escapes `process` (e.g. a parser bug on untrusted input) would
        // otherwise kill the shard, and — because the job never reaches a
        // terminal journal state — replay and kill another one on every
        // restart. Catch it, settle the job as failed, and move on.
        let (id, name, attempt, sink) = (job.id, job.name.clone(), job.attempt, job.sink.clone());
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            process(&sh, &pool, &mut arenas, job);
        }));
        if let Err(payload) = outcome {
            // The arenas were abandoned mid-pass; start fresh rather than
            // trust their internal invariants.
            arenas = PassArenas::default();
            let detail = panic_message(payload.as_ref());
            let v = verdict_json("panicked", &name, None, attempt, 0, &detail);
            // Ordering: Relaxed — counter-before-journal, as finish_err.
            sh.stats.failed.fetch_add(1, Ordering::Relaxed);
            let _ = sh.journal.record_done(id, "err");
            deliver(
                &sink,
                KIND_ERR,
                &protocol::encode_err("panicked", v.as_bytes()),
            );
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job processing panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job processing panicked: {s}")
    } else {
        "job processing panicked".into()
    }
}

fn stats_json(sh: &Shared) -> String {
    let (hits, misses, entries, bytes) = sh.cache.stats();
    format!(
        "{{\"schema\":\"xsfq-serve-stats/1\",\"accepted\":{},\"completed\":{},\
         \"failed\":{},\"shed\":{},\"retries\":{},\"recovered\":{},\
         \"queue_len\":{},\"draining\":{},\"cache\":{{\"hits\":{hits},\
         \"misses\":{misses},\"entries\":{entries},\"bytes\":{bytes}}}}}",
        // Ordering: Relaxed — stats snapshot; counts racing in from jobs
        // settling concurrently may land on either side of the frame, and
        // either answer is correct telemetry.
        sh.stats.accepted.load(Ordering::Relaxed),
        sh.stats.completed.load(Ordering::Relaxed),
        sh.stats.failed.load(Ordering::Relaxed),
        sh.stats.shed.load(Ordering::Relaxed),
        sh.stats.retries.load(Ordering::Relaxed),
        sh.stats.recovered.load(Ordering::Relaxed),
        sh.queue.ready_len(),
        sh.draining.load(Ordering::SeqCst),
    )
}

fn connection(sh: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF or framing error: either way the stream is done.
            _ => return,
        };
        match kind {
            KIND_PING => {
                if write_frame(&mut stream, KIND_PONG, &[]).is_err() {
                    return;
                }
            }
            KIND_STATS => {
                if write_frame(&mut stream, KIND_STATS_OK, stats_json(sh).as_bytes()).is_err() {
                    return;
                }
            }
            KIND_SUBMIT => {
                let reject = |stream: &mut TcpStream, msg: &str, diags: &str| {
                    let v = verdict_json_diags("rejected", "", None, 0, 0, msg, diags);
                    write_frame(
                        stream,
                        KIND_ERR,
                        &protocol::encode_err("rejected", v.as_bytes()),
                    )
                };
                let request = match SubmitRequest::decode(&payload) {
                    Ok(r) => r,
                    Err(e) => {
                        let _ = reject(&mut stream, &format!("bad submit payload: {e}"), "[]");
                        return;
                    }
                };
                let (tx, rx) = mpsc::channel();
                match admit(sh, request, JobSink::Tcp(tx), None) {
                    Admit::Queued => match rx.recv() {
                        Ok((kind, body)) => {
                            if write_frame(&mut stream, kind, &body).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            let _ = reject(&mut stream, "server shut down mid-job", "[]");
                            return;
                        }
                    },
                    Admit::Busy(ms) => {
                        if write_frame(&mut stream, KIND_BUSY, &ms.to_be_bytes()).is_err() {
                            return;
                        }
                    }
                    Admit::Rejected { msg, diags } => {
                        if reject(&mut stream, &msg, &diags).is_err() {
                            return;
                        }
                    }
                }
            }
            _ => return, // unknown request kind: drop the connection
        }
    }
}

fn accept_loop(sh: Arc<Shared>, listener: TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !sh.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let live = sh.connections.fetch_add(1, Ordering::SeqCst) + 1;
                if live > sh.max_connections {
                    sh.connections.fetch_sub(1, Ordering::SeqCst);
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = write_frame(&mut stream, KIND_BUSY, &1000u32.to_be_bytes());
                    continue;
                }
                stream.set_nonblocking(false).expect("blocking stream");
                // Request-response frames; Nagle would only add
                // delayed-ACK latency per exchange.
                let _ = stream.set_nodelay(true);
                let sh = Arc::clone(&sh);
                // Connection threads are detached: they exit on client
                // EOF. Shutdown does not wait for idle keep-alives.
                thread::spawn(move || {
                    connection(&sh, stream);
                    sh.connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

const WATCH_EXTENSIONS: [&str; 3] = ["blif", "aag", "aig"];

fn watcher_loop(sh: Arc<Shared>, watch_dir: PathBuf, out_dir: PathBuf) {
    // A file is ingested only after its size is stable across two polls,
    // so a writer mid-copy is left alone.
    let mut sizes: HashMap<PathBuf, u64> = HashMap::new();
    while !sh.stop.load(Ordering::SeqCst) {
        let entries: Vec<PathBuf> = fs::read_dir(&watch_dir)
            .map(|rd| {
                rd.flatten()
                    .map(|e| e.path())
                    .filter(|p| {
                        p.extension()
                            .and_then(|e| e.to_str())
                            .is_some_and(|e| WATCH_EXTENSIONS.contains(&e))
                    })
                    .collect()
            })
            .unwrap_or_default();
        // Files that vanished between polls (consumed by another process,
        // deleted by the user) must not pin map entries forever.
        sizes.retain(|p, _| entries.contains(p));
        for path in entries {
            let Ok(meta) = fs::metadata(&path) else {
                continue;
            };
            if meta.len() == 0 {
                continue;
            }
            if sizes.get(&path) != Some(&meta.len()) {
                sizes.insert(path.clone(), meta.len());
                continue;
            }
            let Ok(data) = fs::read(&path) else { continue };
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("job")
                .to_string();
            let request = SubmitRequest {
                script: String::new(),
                name: stem.clone(),
                data,
                fault: None,
            };
            let base = out_dir.join(&stem);
            match admit(&sh, request, JobSink::Dir { base: base.clone() }, None) {
                Admit::Queued => {
                    let _ = fs::remove_file(&path);
                    sizes.remove(&path);
                }
                // Queue full: leave the file in place, retry next poll.
                Admit::Busy(_) => {}
                Admit::Rejected { msg, diags } => {
                    let v = verdict_json_diags("rejected", &stem, None, 0, 0, &msg, &diags);
                    if let Some(parent) = base.parent() {
                        let _ = fs::create_dir_all(parent);
                    }
                    let _ = fs::write(base.with_extension("err.json"), v);
                    let _ = fs::remove_file(&path);
                    sizes.remove(&path);
                }
            }
        }
        thread::sleep(Duration::from_millis(100));
    }
}

/// A running daemon. Dropping it without [`Server::shutdown`] leaks its
/// threads (they keep serving) — always shut down or let the process exit.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    drain_grace: Duration,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Start the daemon: open + replay the journal, requeue incomplete
    /// jobs, bind the listener, spawn shards and watchers.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        fs::create_dir_all(&cfg.state_dir)?;
        let out_dir = cfg
            .out_dir
            .clone()
            .unwrap_or_else(|| cfg.state_dir.join("results"));
        let (journal, recovered) = Journal::open(&cfg.state_dir)?;
        let guard_fp = format!(
            "guards={:?};deadline={:?};check={:?};timing={:?};script-defaults=v1",
            cfg.guards, cfg.job_deadline, cfg.check, cfg.timing
        );
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_capacity),
            journal,
            cache: ResultCache::new(cfg.cache_budget),
            stats: Stats::default(),
            cancel: CancelToken::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            max_connections: cfg.max_connections,
            threads_per_job: cfg.threads_per_job.max(1),
            retry_limit: cfg.retry_limit,
            retry_base: cfg.retry_base,
            job_deadline: cfg.job_deadline,
            guards: cfg.guards.clone(),
            check: cfg.check,
            timing: cfg.timing.clone(),
            guard_fp,
            default_script: cfg.default_script.clone(),
        });

        // Requeue everything the previous incarnation accepted but never
        // finished. TCP jobs' clients are gone: they re-run for the cache
        // and the journal's completion record. Directory jobs still write
        // their result files.
        for r in recovered {
            let sink = match r.dir_base {
                Some(base) => JobSink::Dir { base },
                None => JobSink::Discard,
            };
            // Ordering: Relaxed — telemetry counter (see admit).
            shared.stats.recovered.fetch_add(1, Ordering::Relaxed);
            let (id, name) = (r.id, r.request.name.clone());
            match admit(&shared, r.request, sink.clone(), Some(r.id)) {
                Admit::Queued => {}
                // Recovered jobs bypass the capacity check and drain never
                // starts before recovery, so Busy is unreachable; if it
                // ever fires, admit has already journaled the job as shed.
                Admit::Busy(_) => {}
                // A spool this build no longer accepts (script rejected by
                // a newer parser, fault spec on a non-chaos build) must
                // still reach a terminal journal state, or it replays and
                // is re-rejected at every startup and its spool file is
                // never reclaimed.
                Admit::Rejected { msg, diags } => {
                    // Ordering: Relaxed — counter-before-journal, as
                    // finish_err.
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = shared.journal.record_done(id, "err");
                    let v = verdict_json_diags("rejected", &name, None, 0, 0, &msg, &diags);
                    deliver(
                        &sink,
                        KIND_ERR,
                        &protocol::encode_err("rejected", v.as_bytes()),
                    );
                }
            }
        }

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        let workers = (0..cfg.shards.max(1))
            .map(|shard| {
                let sh = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("xsfq-serve-shard-{shard}"))
                    .spawn(move || worker_loop(sh))
                    .expect("spawn shard worker")
            })
            .collect();
        let accept = {
            let sh = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("xsfq-serve-accept".into())
                    .spawn(move || accept_loop(sh, listener))
                    .expect("spawn accept loop"),
            )
        };
        let watcher = cfg.watch_dir.clone().map(|dir| {
            fs::create_dir_all(&dir).ok();
            let sh = Arc::clone(&shared);
            thread::Builder::new()
                .name("xsfq-serve-watch".into())
                .spawn(move || watcher_loop(sh, dir, out_dir))
                .expect("spawn watcher")
        });

        Ok(Server {
            shared,
            local_addr,
            drain_grace: cfg.drain_grace,
            workers,
            accept,
            watcher,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful drain: stop admitting (new submissions get BUSY), let
    /// queued + in-flight jobs finish, cancel whatever is still running
    /// after the grace period, flush the journal, join every thread.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        {
            let cancel = self.shared.cancel.clone();
            let grace = self.drain_grace;
            // Detached on purpose: joining would stall shutdown for the
            // full grace even when the queue drains instantly.
            thread::spawn(move || {
                thread::sleep(grace);
                cancel.cancel();
            });
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.watcher.take() {
            let _ = t.join();
        }
    }
}
