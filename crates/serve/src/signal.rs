//! Minimal SIGTERM/SIGINT latching without a signal-handling crate.
//!
//! The daemon only needs one bit — "a termination signal arrived" — so the
//! handler does the one thing that is async-signal-safe: store to a
//! `static` atomic. The main loop polls [`triggered`]. Installed via the
//! C `signal(2)` entry point through a direct FFI declaration; std links
//! libc already, so this adds no dependency.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one operation unconditionally
        // async-signal-safe.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: plain FFI into libc `signal(2)` with a valid
        // `extern "C"` handler address; the handler body is restricted to
        // a single atomic store, which is async-signal-safe, so no
        // handler-context UB is possible.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix builds run without signal-triggered drain; stop the
    /// daemon by killing the process.
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT latch (no-op off unix). Idempotent.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Reset the latch (tests only).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}
