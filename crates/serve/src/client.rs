//! A minimal blocking client for the daemon's TCP protocol.
//!
//! One [`Client`] wraps one connection; requests are strictly
//! request-response in order. Used by the integration tests, the
//! `serve_client` example, and the serve benchmark group — and small
//! enough to copy into any tool that needs to talk to the daemon.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    decode_response, read_frame, write_frame, ProtocolError, Response, SubmitRequest, KIND_PING,
    KIND_STATS, KIND_SUBMIT,
};

/// A connected client. See the [module docs](self).
pub struct Client {
    stream: TcpStream,
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server broke the framing contract (or closed mid-response).
    Protocol(ProtocolError),
    /// Clean EOF where a response was expected.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            ClientError::Closed => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is strict request-response; Nagle only adds
        // delayed-ACK latency to every exchange.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn exchange(&mut self, kind: u8, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, kind, payload)?;
        match read_frame(&mut self.stream)? {
            Some((kind, body)) => Ok(decode_response(kind, &body)?),
            None => Err(ClientError::Closed),
        }
    }

    /// Submit a netlist and block until its verdict.
    pub fn submit(&mut self, request: &SubmitRequest) -> Result<Response, ClientError> {
        self.exchange(KIND_SUBMIT, &request.encode())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.exchange(KIND_PING, &[])
    }

    /// Server statistics snapshot (JSON bytes).
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.exchange(KIND_STATS, &[])
    }
}
