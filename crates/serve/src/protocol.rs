//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message is one *frame*: a 4-byte big-endian length `n`, then `n`
//! bytes of body, of which the first is the frame *kind* and the rest the
//! kind-specific payload. `n` is capped at [`MAX_FRAME`]; a peer announcing
//! a larger frame is cut off before any allocation. The same encoding is
//! reused verbatim as the on-disk spool format of the job journal, so a
//! recovered job replays through exactly the code path a fresh one takes.
//!
//! See the [crate docs](crate) for the full request/response catalogue.

use std::io::{self, Read, Write};

/// Hard cap on a frame body (kind byte + payload): 64 MiB.
pub const MAX_FRAME: usize = 64 << 20;

/// Protocol version carried in every SUBMIT payload.
pub const VERSION: u8 = 1;

/// Request: submit one netlist for synthesis.
pub const KIND_SUBMIT: u8 = 0x01;
/// Request: liveness probe.
pub const KIND_PING: u8 = 0x02;
/// Request: server statistics snapshot.
pub const KIND_STATS: u8 = 0x03;
/// Response: job finished; payload carries netlist + report.
pub const KIND_OK: u8 = 0x81;
/// Response: job failed; payload carries a structured verdict.
pub const KIND_ERR: u8 = 0x82;
/// Response: admission queue full; payload carries a retry-after hint.
pub const KIND_BUSY: u8 = 0x83;
/// Response to [`KIND_PING`].
pub const KIND_PONG: u8 = 0x84;
/// Response to [`KIND_STATS`]: JSON payload.
pub const KIND_STATS_OK: u8 = 0x85;

/// A malformed or oversized frame. The connection is dropped on sight —
/// framing errors are not recoverable mid-stream.
#[derive(Debug)]
pub enum ProtocolError {
    /// Frame length field exceeds [`MAX_FRAME`] or is zero.
    BadLength(usize),
    /// Payload ended before its declared length.
    Truncated,
    /// A length-prefixed string was not UTF-8.
    BadUtf8,
    /// SUBMIT payload version is not [`VERSION`].
    BadVersion(u8),
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtocolError::Truncated => write!(f, "truncated payload"),
            ProtocolError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

/// Read one frame; returns `(kind, payload)`, or `None` on clean EOF at a
/// frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, ProtocolError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n == 0 || n > MAX_FRAME {
        return Err(ProtocolError::BadLength(n));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    let kind = body[0];
    body.remove(0);
    Ok(Some((kind, body)))
}

/// Write one frame. The header and payload are coalesced into a single
/// `write_all` — on an unbuffered `TcpStream`, separate small writes would
/// hand Nagle's algorithm a partial segment to sit on and cost a
/// delayed-ACK round trip per frame.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    let n = payload.len() + 1;
    assert!(n <= MAX_FRAME, "frame body exceeds MAX_FRAME");
    let mut buf = Vec::with_capacity(4 + n);
    buf.extend_from_slice(&(n as u32).to_be_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// A deterministic fault a SUBMIT may request (chaos builds only): which
/// kind (1 panic, 2 stall, 3 guard-trip) at which 0-based pass index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// 1 = panic, 2 = stall, 3 = guard-trip.
    pub kind: u8,
    /// 0-based pass index the fault fires at.
    pub pass: u16,
}

/// A decoded SUBMIT request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Pass script (`"b; rw; rf"` grammar or a preset name); empty means
    /// the server default.
    pub script: String,
    /// Design name override; empty means take the name from the netlist.
    pub name: String,
    /// Raw netlist bytes — BLIF or AIGER, sniffed by content server-side.
    pub data: Vec<u8>,
    /// Requested fault injection; rejected by non-chaos servers.
    pub fault: Option<FaultSpec>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len() as u16).to_be_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| ProtocolError::BadUtf8)
    }
}

impl SubmitRequest {
    /// Encode as a SUBMIT frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 64);
        out.push(VERSION);
        let (fk, fp) = self.fault.map_or((0, 0), |f| (f.kind, f.pass));
        out.push(fk);
        out.extend_from_slice(&fp.to_be_bytes());
        put_str(&mut out, &self.script);
        put_str(&mut out, &self.name);
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decode a SUBMIT frame payload.
    pub fn decode(payload: &[u8]) -> Result<SubmitRequest, ProtocolError> {
        let mut c = Cursor {
            buf: payload,
            at: 0,
        };
        let version = c.u8()?;
        if version != VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let fk = c.u8()?;
        let fp = c.u16()?;
        let script = c.str()?;
        let name = c.str()?;
        let n = c.u32()? as usize;
        let data = c.take(n)?.to_vec();
        Ok(SubmitRequest {
            script,
            name,
            data,
            fault: (fk != 0).then_some(FaultSpec { kind: fk, pass: fp }),
        })
    }
}

/// A decoded response frame, as seen by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Synthesis succeeded. `cache_hit` is true when the bytes came from
    /// the result cache; the payload bytes are identical either way.
    Ok {
        /// Whether the result was served from the canonical-AIG cache.
        cache_hit: bool,
        /// The mapped netlist, Verilog text.
        netlist: Vec<u8>,
        /// The per-pass telemetry report, JSON (`xsfq-flow-report/1`).
        report: Vec<u8>,
    },
    /// Synthesis failed. The verdict is JSON (`xsfq-serve-verdict/1`).
    Err {
        /// Stable failure kind (`"panicked"`, `"deadline"`, `"flow"`, …).
        kind: String,
        /// Structured verdict JSON.
        verdict: Vec<u8>,
    },
    /// Admission queue full — resubmit after the hinted delay.
    Busy {
        /// Backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// Reply to a PING.
    Pong,
    /// Server statistics, JSON.
    Stats(Vec<u8>),
}

/// Encode the netlist + report segments of an OK response. This is what
/// the result cache stores, so a cache hit replays the exact bytes a miss
/// produced — only the leading `cache_hit` flag differs.
pub fn encode_result_segments(netlist: &[u8], report: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(netlist.len() + report.len() + 8);
    out.extend_from_slice(&(netlist.len() as u32).to_be_bytes());
    out.extend_from_slice(netlist);
    out.extend_from_slice(&(report.len() as u32).to_be_bytes());
    out.extend_from_slice(report);
    out
}

/// Compose the full OK body from a cache-hit flag and encoded segments.
pub fn encode_ok_body(cache_hit: bool, segments: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(segments.len() + 1);
    out.push(cache_hit as u8);
    out.extend_from_slice(segments);
    out
}

/// Encode the body bytes of an OK response (without the frame header).
pub fn encode_ok(cache_hit: bool, netlist: &[u8], report: &[u8]) -> Vec<u8> {
    encode_ok_body(cache_hit, &encode_result_segments(netlist, report))
}

/// Encode the body bytes of an ERR response.
pub fn encode_err(kind: &str, verdict: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(verdict.len() + kind.len() + 8);
    put_str(&mut out, kind);
    out.extend_from_slice(&(verdict.len() as u32).to_be_bytes());
    out.extend_from_slice(verdict);
    out
}

/// Decode any response frame.
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    match kind {
        KIND_OK => {
            let cache_hit = c.u8()? != 0;
            let n = c.u32()? as usize;
            let netlist = c.take(n)?.to_vec();
            let n = c.u32()? as usize;
            let report = c.take(n)?.to_vec();
            Ok(Response::Ok {
                cache_hit,
                netlist,
                report,
            })
        }
        KIND_ERR => {
            let kind = c.str()?;
            let n = c.u32()? as usize;
            let verdict = c.take(n)?.to_vec();
            Ok(Response::Err { kind, verdict })
        }
        KIND_BUSY => Ok(Response::Busy {
            retry_after_ms: c.u32()?,
        }),
        KIND_PONG => Ok(Response::Pong),
        KIND_STATS_OK => Ok(Response::Stats(payload.to_vec())),
        other => Err(ProtocolError::BadLength(other as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = SubmitRequest {
            script: "b; rw; rf".into(),
            name: "adder".into(),
            data: b".model t\n.end\n".to_vec(),
            fault: Some(FaultSpec { kind: 2, pass: 3 }),
        };
        assert_eq!(SubmitRequest::decode(&req.encode()).unwrap(), req);
        let plain = SubmitRequest {
            fault: None,
            ..req.clone()
        };
        assert_eq!(SubmitRequest::decode(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_PING, &[]).unwrap();
        write_frame(&mut buf, KIND_SUBMIT, b"payload").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((KIND_PING, vec![])));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((KIND_SUBMIT, b"payload".to_vec()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A length field past MAX_FRAME fails before allocating.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ProtocolError::BadLength(_))
        ));
        // A zero-length frame (no kind byte) is malformed.
        let zero = 0u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(ProtocolError::BadLength(0))
        ));
    }

    #[test]
    fn truncated_submit_is_an_error_not_a_panic() {
        let req = SubmitRequest {
            script: String::new(),
            name: "x".into(),
            data: vec![1, 2, 3, 4],
            fault: None,
        };
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            assert!(SubmitRequest::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn responses_round_trip() {
        let ok = encode_ok(true, b"module m;", b"{}");
        assert_eq!(
            decode_response(KIND_OK, &ok).unwrap(),
            Response::Ok {
                cache_hit: true,
                netlist: b"module m;".to_vec(),
                report: b"{}".to_vec(),
            }
        );
        let err = encode_err("deadline", b"{\"kind\":\"deadline\"}");
        assert_eq!(
            decode_response(KIND_ERR, &err).unwrap(),
            Response::Err {
                kind: "deadline".into(),
                verdict: b"{\"kind\":\"deadline\"}".to_vec(),
            }
        );
    }
}
