//! Serve-local synchronization facade for the admission queue.
//!
//! Mirrors `crates/exec/src/sync.rs` in miniature: normal builds re-export
//! the `std` primitives unchanged (zero cost, zero behavioural difference),
//! while `--features model` resolves the same paths to the [`xsfq_model`]
//! instrumented runtime so `tests/model_gate.rs` can deterministically
//! enumerate the queue's lock/wait/notify interleavings.
//!
//! Scope is deliberately `queue.rs` only. The rest of the daemon keeps
//! `std` directly — in particular this crate's `model` feature does *not*
//! enable `xsfq-exec/model`, because the daemon hands `std::time::Instant`
//! deadlines to the executor's cancel tokens and modeling that boundary
//! would change the public API the core crates compile against.

/// Std-backed primitives (normal builds).
#[cfg(not(feature = "model"))]
mod imp {
    pub use std::sync::{Condvar, Mutex};
    /// Monotonic time for retry due-instants.
    pub mod time {
        pub use std::time::Instant;
    }
}

/// Model-runtime primitives (`--features model` builds).
#[cfg(feature = "model")]
mod imp {
    pub use xsfq_model::sync::{Condvar, Mutex};
    /// Logical time (monotonic along a modeled schedule).
    pub mod time {
        pub use xsfq_model::time::Instant;
    }
}

pub use imp::*;
