//! Model-checker gates for the daemon's admission queue, plus the PR-7
//! stats-vs-journal regression.
//!
//! Only meaningful with `--features model`, which swaps the crate-local
//! `sync` facade (used by `queue.rs` alone) to the `xsfq_model`
//! instrumented runtime; run as
//!
//! ```text
//! cargo test -p xsfq-serve --features model --test model_gate
//! ```
//!
//! Unlike the executor's gate there are no seeded mutations here: the
//! queue is lock-based, so the properties under test are liveness and
//! invariant preservation across interleavings (no lost wakeups, capacity
//! respected under concurrent admission, graceful drain after close) —
//! bug classes the explorer detects directly as deadlocks or assertion
//! failures, with bounds fixed so the enumeration is deterministic.

#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use xsfq_model::thread;
use xsfq_model::Explorer;
use xsfq_serve::job::{Job, JobSink};
use xsfq_serve::queue::JobQueue;

fn job(id: u64) -> Job {
    Job {
        id,
        name: format!("j{id}"),
        script: String::new(),
        data: Vec::new(),
        fault: None,
        sink: JobSink::Discard,
        attempt: 0,
    }
}

/// A push must wake a popper that blocked on the empty queue — in every
/// schedule, including the one where the popper checks, finds the queue
/// empty, and races the pusher to the condvar (the classic lost-wakeup
/// window; the queue is safe because the check and the wait share the
/// mutex critical section).
#[test]
fn push_wakes_blocked_popper() {
    let report = Explorer::new().preemptions(2).check(|| {
        let queue = Arc::new(JobQueue::new(4));
        let q = Arc::clone(&queue);
        let popper = thread::Builder::new()
            .spawn(move || q.pop().map(|j| j.id))
            .unwrap();
        queue.try_push(job(9)).unwrap();
        assert_eq!(popper.join().unwrap(), Some(9), "admitted job never popped");
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// Two threads race to admit into a capacity-1 queue: exactly one wins in
/// every interleaving, and the loser gets its job handed back.
#[test]
fn capacity_is_enforced_under_concurrent_pushers() {
    let report = Explorer::new().preemptions(2).check(|| {
        let queue = Arc::new(JobQueue::new(1));
        let q = Arc::clone(&queue);
        let racer = thread::Builder::new()
            .spawn(move || q.try_push(job(2)).is_ok())
            .unwrap();
        let local = queue.try_push(job(1)).is_ok();
        let remote = racer.join().unwrap();
        assert_eq!(
            usize::from(local) + usize::from(remote),
            1,
            "capacity 1 but {local}/{remote} admissions succeeded"
        );
        assert_eq!(queue.ready_len(), 1);
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// Close races a draining popper: queued work is still delivered, the pop
/// after the drain returns `None` (no popper is left blocked forever), and
/// admissions after close are refused.
#[test]
fn close_wakes_poppers_and_drains() {
    let report = Explorer::new().preemptions(2).check(|| {
        let queue = Arc::new(JobQueue::new(2));
        queue.try_push(job(1)).unwrap();
        let q = Arc::clone(&queue);
        let closer = thread::Builder::new().spawn(move || q.close()).unwrap();
        assert_eq!(
            queue.pop().map(|j| j.id),
            Some(1),
            "job admitted before close was lost in the drain"
        );
        assert!(queue.pop().is_none(), "pop after drain must end, not block");
        closer.join().unwrap();
        assert!(queue.try_push(job(3)).is_err(), "admission after close");
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// A retry bypasses the capacity check (the job was already accepted and
/// journaled; shedding it would break at-least-once) and reaches a popper
/// that may already be blocked when the retry lands.
#[test]
fn retry_bypasses_capacity_and_reaches_blocked_popper() {
    let report = Explorer::new().preemptions(2).check(|| {
        let queue = Arc::new(JobQueue::new(0));
        assert!(queue.try_push(job(1)).is_err(), "capacity 0 must shed");
        let q = Arc::clone(&queue);
        let retrier = thread::Builder::new()
            .spawn(move || q.push_retry(job(7), Duration::from_nanos(0)).is_ok())
            .unwrap();
        assert_eq!(
            queue.pop().map(|j| j.id),
            Some(7),
            "due retry never delivered"
        );
        assert!(retrier.join().unwrap());
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// A not-yet-due retry makes the popper take the timed-wait branch; the
/// wait re-arms until the due instant passes on the modeled clock and the
/// job is promoted — never lost, never delivered early.
#[test]
fn delayed_retry_comes_due_on_the_modeled_clock() {
    let report = Explorer::new().preemptions(2).check(|| {
        let queue = JobQueue::new(1);
        queue.push_retry(job(5), Duration::from_nanos(3)).unwrap();
        assert_eq!(queue.pop().map(|j| j.id), Some(5));
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

// ---------------------------------------------------------------------------
// Regression: the PR-7 stats-vs-journal observation race (fixed in 924f41a)
// ---------------------------------------------------------------------------

/// Distilled `finish_ok` shape from `server.rs`: a worker settling a job
/// updates the completion counter and appends the durable journal `D`
/// record, while an observer reads the journal and then the stats. The
/// invariant (documented on `finish_ok`): anyone who observes the durable
/// record already sees the updated counter.
///
/// Pre-fix, the journal append came first, so an observer could see the
/// `D` record while the counter still read the old value — exactly the
/// stale-stats report PR-7's review caught. The fix reversed the order:
/// counter first, then journal, the mutex edge on the journal ordering the
/// counter update before any observer that sees the record.
fn finish_shape(counter_first: bool) {
    use xsfq_model::sync::atomic::{AtomicUsize, Ordering};
    use xsfq_model::sync::Mutex;
    let journal = Arc::new(Mutex::new(0usize));
    let completed = Arc::new(AtomicUsize::new(0));
    let (journal_w, completed_w) = (Arc::clone(&journal), Arc::clone(&completed));
    let worker = thread::Builder::new()
        .spawn(move || {
            // Ordering: Relaxed — mirrors the Relaxed stats counters in
            // server.rs; the invariant rides on program order plus the
            // journal mutex, which is exactly what this gate checks.
            if counter_first {
                completed_w.fetch_add(1, Ordering::Relaxed);
                *journal_w.lock().unwrap() += 1;
            } else {
                *journal_w.lock().unwrap() += 1;
                completed_w.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
    let durable = *journal.lock().unwrap();
    if durable == 1 {
        // Ordering: Relaxed — the mutex edge above is what must make the
        // bump visible; a stronger load here would mask the bug.
        assert_eq!(
            completed.load(Ordering::Relaxed),
            1,
            "journal holds the done record but stats missed the completion"
        );
    }
    worker.join().unwrap();
}

/// The explorer finds the stale-stats schedule on the pre-fix ordering —
/// proof the gate would have caught PR-7's bug before review did.
#[test]
fn pr7_race_found_on_pre_fix_shape() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Explorer::new().preemptions(2).check(|| finish_shape(false));
    }));
    assert!(
        result.is_err(),
        "pre-fix journal-then-counter ordering was NOT caught"
    );
}

/// The shipped counter-then-journal ordering is clean under the same
/// bounds.
#[test]
fn pr7_post_fix_shape_is_clean() {
    let report = Explorer::new().preemptions(2).check(|| finish_shape(true));
    assert!(report.complete, "exploration did not exhaust the tree");
}
