//! Chaos soak (chaos feature only): injected panics, stalls, and guard
//! trips interleaved with healthy traffic — healthy results must be
//! bit-identical to solo runs — plus a `kill -9` + restart of the real
//! daemon binary, recovering exactly the incomplete jobs from the journal.
#![cfg(feature = "chaos")]

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use xsfq_aig::io::write_blif;
use xsfq_aig::Aig;
use xsfq_core::SynthesisFlow;
use xsfq_netlist::writers::write_verilog;
use xsfq_serve::protocol::{FaultSpec, Response, SubmitRequest};
use xsfq_serve::{Client, ServeConfig, Server};

const SCRIPT: &str = "fast";
const HEALTHY: [&str; 4] = ["int2float", "dec", "priority", "cavlc"];

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("xsfq-serve-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn blif_bytes(aig: &Aig) -> Vec<u8> {
    let mut buf = Vec::new();
    write_blif(aig, &mut buf).unwrap();
    buf
}

fn scrub_timings(json: &str) -> String {
    let mut out = String::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"wall_ns\":") {
        let after = pos + "\"wall_ns\":".len();
        out.push_str(&rest[..after]);
        let tail = &rest[after..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn submit_request(name: &str, data: Vec<u8>, fault: Option<FaultSpec>) -> SubmitRequest {
    SubmitRequest {
        script: SCRIPT.into(),
        name: name.into(),
        data,
        fault,
    }
}

/// Faults never leak across job boundaries, and every failure mode maps to
/// its structured verdict while healthy traffic stays bit-identical.
#[test]
fn fault_mix_leaves_healthy_jobs_bit_identical() {
    let state = tmpdir("mix");
    let mut cfg = ServeConfig::new(&state);
    cfg.shards = 2;
    cfg.retry_limit = 1;
    cfg.retry_base = Duration::from_millis(5);
    cfg.job_deadline = Some(Duration::from_millis(2000));
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let solo: Vec<(String, Vec<u8>, String)> = HEALTHY
        .iter()
        .map(|name| {
            let aig = xsfq_benchmarks::by_name(name).unwrap();
            let result = SynthesisFlow::new()
                .script_str(SCRIPT)
                .unwrap()
                .run(&aig)
                .unwrap();
            let mut netlist = Vec::new();
            write_verilog(result.netlist(), &mut netlist).unwrap();
            (name.to_string(), netlist, result.report.to_json())
        })
        .collect();

    // Interleave: every healthy design races a panicker, a staller, and a
    // guard-tripper, all on separate connections.
    let faulty: Vec<(&str, FaultSpec, &str)> = vec![
        // A panic is transient: retried once (the plan re-fires), then a
        // `panicked` verdict.
        ("dec", FaultSpec { kind: 1, pass: 0 }, "panicked"),
        // A stall burns until the job deadline: a `deadline` verdict.
        ("priority", FaultSpec { kind: 2, pass: 0 }, "deadline"),
        // An injected guard trip surfaces as a structured flow error.
        ("cavlc", FaultSpec { kind: 3, pass: 1 }, "flow"),
    ];

    let mut handles = Vec::new();
    for (name, fault, want_kind) in faulty {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let data = blif_bytes(&aig);
        let want = want_kind.to_string();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            match client
                .submit(&submit_request(name, data, Some(fault)))
                .unwrap()
            {
                Response::Err { kind, verdict } => {
                    assert_eq!(kind, want, "fault {fault:?} on {name}");
                    let v = String::from_utf8(verdict).unwrap();
                    assert!(v.contains("\"schema\":\"xsfq-serve-verdict/1\""), "{v}");
                }
                other => panic!("{name}: expected Err({want}), got {other:?}"),
            }
        }));
    }
    for (name, solo_netlist, solo_report) in &solo {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let data = blif_bytes(&aig);
        let (name, solo_netlist, solo_report) =
            (name.clone(), solo_netlist.clone(), solo_report.clone());
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            match client.submit(&submit_request(&name, data, None)).unwrap() {
                Response::Ok {
                    netlist, report, ..
                } => {
                    assert_eq!(
                        netlist, solo_netlist,
                        "{name}: healthy netlist must be bit-identical under chaos"
                    );
                    assert_eq!(
                        scrub_timings(&String::from_utf8(report).unwrap()),
                        scrub_timings(&solo_report),
                        "{name}: healthy report must match solo"
                    );
                }
                other => panic!("{name}: expected Ok, got {other:?}"),
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The panic and guard-trip paths exercised the retry lane.
    let mut client = Client::connect(addr).unwrap();
    let Response::Stats(json) = client.stats().unwrap() else {
        panic!("expected Stats");
    };
    let json = String::from_utf8(json).unwrap();
    assert!(json.contains("\"retries\":2"), "{json}");
    assert!(json.contains("\"completed\":4"), "{json}");
    assert!(json.contains("\"failed\":3"), "{json}");
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

struct Daemon {
    child: Child,
    addr: String,
}

fn spawn_daemon(state: &Path, extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xsfq-serve"))
        .arg("--state-dir")
        .arg(state)
        .args(["--script", SCRIPT])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xsfq-serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("daemon announces its address")
        .expect("read daemon stdout");
    let addr = line
        .rsplit(' ')
        .next()
        .expect("address on the listening line")
        .to_string();
    Daemon { child, addr }
}

fn count_journal(state: &Path, prefix: &str) -> usize {
    fs::read_to_string(state.join("journal.log"))
        .map(|t| t.lines().filter(|l| l.starts_with(prefix)).count())
        .unwrap_or(0)
}

fn wait_for(deadline: Instant, what: &str, mut cond: impl FnMut() -> bool) {
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stats_of(addr: &str) -> String {
    let mut client = Client::connect(addr).unwrap();
    let Response::Stats(json) = client.stats().unwrap() else {
        panic!("expected Stats");
    };
    String::from_utf8(json).unwrap()
}

/// `kill -9` the daemon mid-batch; the restart replays the journal and
/// requeues exactly the accepted-but-incomplete jobs.
#[test]
fn killed_daemon_recovers_exactly_the_incomplete_jobs() {
    let state = tmpdir("kill");
    let deadline = Instant::now() + Duration::from_secs(300);

    // Incarnation 1: one shard, no job deadline. A stall job pins the
    // shard forever; three healthy jobs queue behind it.
    let daemon = spawn_daemon(&state, &["--shards", "1", "--deadline-ms", "0"]);
    let addr = daemon.addr.clone();
    let mut clients = Vec::new();
    let stall = xsfq_benchmarks::by_name("dec").unwrap();
    clients.push(std::thread::spawn({
        let data = blif_bytes(&stall);
        let addr = addr.clone();
        move || {
            let mut c = Client::connect(&*addr).unwrap();
            // The daemon dies under us: any outcome is fine.
            let _ = c.submit(&submit_request(
                "stall",
                data,
                Some(FaultSpec { kind: 2, pass: 0 }),
            ));
        }
    }));
    // Wait until the shard has dequeued the stall job (accepted and no
    // longer queued) before submitting healthy traffic: only then is it
    // guaranteed that none of the healthy jobs can start.
    wait_for(deadline, "stall job to occupy the shard", || {
        let stats = stats_of(&addr);
        stats.contains("\"accepted\":1") && stats.contains("\"queue_len\":0")
    });
    for name in ["int2float", "priority", "cavlc"] {
        let data = blif_bytes(&xsfq_benchmarks::by_name(name).unwrap());
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(&*addr).unwrap();
            let _ = c.submit(&submit_request(name, data, None));
        }));
    }
    // All four jobs durable (journaled) — then SIGKILL, no warning.
    wait_for(deadline, "4 journaled submissions", || {
        count_journal(&state, "S ") == 4
    });
    let mut child = daemon.child;
    child.kill().unwrap();
    let _ = child.wait();
    for c in clients {
        let _ = c.join();
    }
    assert_eq!(
        count_journal(&state, "D "),
        0,
        "nothing completed before the kill"
    );

    // Incarnation 2: recovery. The stall job replays (its fault spec was
    // spooled) and dies by the new deadline; the healthy three complete.
    let daemon2 = spawn_daemon(&state, &["--shards", "2", "--deadline-ms", "2000"]);
    wait_for(
        deadline,
        "4 recovered jobs to reach a terminal state",
        || count_journal(&state, "D ") == 4,
    );
    let stats = stats_of(&daemon2.addr);
    assert!(stats.contains("\"recovered\":4"), "{stats}");
    assert!(stats.contains("\"completed\":3"), "{stats}");
    assert!(stats.contains("\"failed\":1"), "{stats}");

    // Graceful drain via SIGTERM; the journal ends fully settled.
    let pid = daemon2.child.id().to_string();
    let mut child2 = daemon2.child;
    Command::new("kill").arg(&pid).status().unwrap();
    let exited = child2.wait().unwrap();
    assert!(exited.success(), "graceful drain exits cleanly");

    // Incarnation 3: a settled journal recovers nothing.
    let daemon3 = spawn_daemon(&state, &[]);
    let stats = stats_of(&daemon3.addr);
    assert!(stats.contains("\"recovered\":0"), "{stats}");
    let mut child3 = daemon3.child;
    child3.kill().unwrap();
    let _ = child3.wait();
    let _ = fs::remove_dir_all(&state);
}
