//! End-to-end smoke: a real daemon on a real socket, EPFL designs in,
//! netlists + reports out, bit-identical to solo runs of the same flow.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use xsfq_aig::io::write_blif;
use xsfq_aig::Aig;
use xsfq_core::SynthesisFlow;
use xsfq_netlist::writers::write_verilog;
use xsfq_serve::protocol::{Response, SubmitRequest};
use xsfq_serve::{Client, ServeConfig, Server};

const SCRIPT: &str = "fast";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "xsfq-serve-smoke-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Zero out the `wall_ns` timing fields: they are the one part of a
/// report that legitimately differs between two runs of the same job.
fn scrub_timings(json: &str) -> String {
    let mut out = String::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"wall_ns\":") {
        let after = pos + "\"wall_ns\":".len();
        out.push_str(&rest[..after]);
        let tail = &rest[after..];
        let digits = tail.bytes().take_while(|b| b.is_ascii_digit()).count();
        out.push('0');
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

fn blif_bytes(aig: &Aig) -> Vec<u8> {
    let mut buf = Vec::new();
    write_blif(aig, &mut buf).unwrap();
    buf
}

/// The reference result: the same flow run directly, no daemon.
fn solo(aig: &Aig) -> (Vec<u8>, String) {
    let result = SynthesisFlow::new()
        .script_str(SCRIPT)
        .unwrap()
        .run(aig)
        .unwrap();
    let mut netlist = Vec::new();
    write_verilog(result.netlist(), &mut netlist).unwrap();
    (netlist, result.report.to_json())
}

fn submit(client: &mut Client, name: &str, data: Vec<u8>) -> Response {
    client
        .submit(&SubmitRequest {
            script: SCRIPT.into(),
            name: name.into(),
            data,
            fault: None,
        })
        .unwrap()
}

#[test]
fn epfl_designs_over_the_socket_match_solo_runs() {
    let state = tmpdir("epfl");
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for name in ["int2float", "dec", "priority", "cavlc"] {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let (solo_netlist, solo_report) = solo(&aig);
        match submit(&mut client, name, blif_bytes(&aig)) {
            Response::Ok {
                cache_hit,
                netlist,
                report,
            } => {
                assert!(!cache_hit, "{name}: first run cannot hit the cache");
                assert_eq!(netlist, solo_netlist, "{name}: netlist differs from solo");
                assert_eq!(
                    scrub_timings(&String::from_utf8(report).unwrap()),
                    scrub_timings(&solo_report),
                    "{name}: report differs from solo"
                );
            }
            other => panic!("{name}: expected Ok, got {other:?}"),
        }
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn resubmission_hits_the_cache_with_identical_bytes() {
    let state = tmpdir("cache");
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();

    let first = submit(&mut client, "ctrl", blif_bytes(&aig));
    let Response::Ok {
        cache_hit: false,
        netlist,
        report,
    } = first
    else {
        panic!("expected a cache-miss Ok, got {first:?}");
    };

    // Same design again — and again through an AIGER writer's view of it:
    // the canonical digest sees through the format change.
    let second = submit(&mut client, "ctrl", blif_bytes(&aig));
    match second {
        Response::Ok {
            cache_hit,
            netlist: n2,
            report: r2,
        } => {
            assert!(cache_hit, "resubmission must hit the cache");
            assert_eq!(n2, netlist, "cache hit must replay identical bytes");
            assert_eq!(r2, report);
        }
        other => panic!("expected Ok, got {other:?}"),
    }

    // A different script is a different result — no false sharing.
    let other_script = client
        .submit(&SubmitRequest {
            script: "b; rw".into(),
            name: "ctrl".into(),
            data: blif_bytes(&aig),
            fault: None,
        })
        .unwrap();
    match other_script {
        Response::Ok { cache_hit, .. } => assert!(!cache_hit),
        other => panic!("expected Ok, got {other:?}"),
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn full_queue_sheds_with_busy_and_retry_hint() {
    let state = tmpdir("busy");
    let mut cfg = ServeConfig::new(&state);
    cfg.queue_capacity = 0; // deterministic: every submission sheds
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    match submit(&mut client, "ctrl", blif_bytes(&aig)) {
        Response::Busy { retry_after_ms } => {
            assert!(retry_after_ms > 0, "hint must tell the client to back off");
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // The daemon is still healthy after shedding.
    assert_eq!(client.ping().unwrap(), Response::Pong);
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn watched_directory_jobs_produce_result_files() {
    let state = tmpdir("watch");
    let watch = state.join("inbox");
    let out = state.join("outbox");
    fs::create_dir_all(&watch).unwrap();
    let mut cfg = ServeConfig::new(&state);
    cfg.watch_dir = Some(watch.clone());
    cfg.out_dir = Some(out.clone());
    let server = Server::start(cfg).unwrap();

    let aig = xsfq_benchmarks::by_name("int2float").unwrap();
    fs::write(watch.join("int2float.blif"), blif_bytes(&aig)).unwrap();
    // Garbage gets a structured rejection file, not a wedged daemon.
    fs::write(watch.join("garbage.blif"), b"not a netlist at all\n").unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    let ok_v = out.join("int2float.v");
    let ok_json = out.join("int2float.json");
    let err_json = out.join("garbage.err.json");
    while (!ok_v.exists() || !ok_json.exists() || !err_json.exists()) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let netlist = fs::read(&ok_v).expect("netlist result file");
    let (solo_netlist, solo_report) = {
        let result = SynthesisFlow::new()
            .script_str("standard")
            .unwrap()
            .run(&aig)
            .unwrap();
        let mut n = Vec::new();
        write_verilog(result.netlist(), &mut n).unwrap();
        (n, result.report.to_json())
    };
    assert_eq!(netlist, solo_netlist, "dir job netlist differs from solo");
    assert_eq!(
        scrub_timings(&fs::read_to_string(&ok_json).unwrap()),
        scrub_timings(&solo_report)
    );
    let verdict = fs::read_to_string(&err_json).unwrap();
    assert!(verdict.contains("\"kind\":\"parse\""), "got: {verdict}");
    assert!(
        !watch.join("int2float.blif").exists(),
        "ingested job files are consumed"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn malformed_input_gets_a_structured_verdict_not_a_dead_server() {
    let state = tmpdir("garbage");
    let server = Server::start(ServeConfig::new(&state)).unwrap();

    // Garbage netlist bytes: a parse verdict.
    let mut client = Client::connect(server.local_addr()).unwrap();
    match submit(&mut client, "junk", b"\x00\x01\x02 not a netlist".to_vec()) {
        Response::Err { kind, verdict } => {
            assert_eq!(kind, "parse");
            let v = String::from_utf8(verdict).unwrap();
            assert!(v.contains("\"schema\":\"xsfq-serve-verdict/1\""), "{v}");
        }
        other => panic!("expected Err, got {other:?}"),
    }

    // An unknown pass name parses as a script but fails script
    // compilation inside the flow: a structured `flow` verdict.
    match client
        .submit(&SubmitRequest {
            script: "no-such-pass".into(),
            name: "x".into(),
            data: b".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n".to_vec(),
            fault: None,
        })
        .unwrap()
    {
        Response::Err { kind, .. } => assert_eq!(kind, "flow"),
        other => panic!("expected Err, got {other:?}"),
    }

    // Raw garbage on the wire kills that connection, nothing else.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&[0xff; 64]).unwrap();
    }
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert_eq!(fresh.ping().unwrap(), Response::Pong);

    // Fault injection is refused on non-chaos builds.
    if !cfg!(feature = "chaos") {
        match fresh
            .submit(&SubmitRequest {
                script: String::new(),
                name: "x".into(),
                data: b".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n".to_vec(),
                fault: Some(xsfq_serve::protocol::FaultSpec { kind: 1, pass: 0 }),
            })
            .unwrap()
        {
            Response::Err { kind, .. } => assert_eq!(kind, "rejected"),
            other => panic!("expected Err, got {other:?}"),
        }
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn ill_formed_submission_is_rejected_at_admission_with_lint_diags() {
    let state = tmpdir("lint");
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Parses fine, but the output port shadows an input — downstream the
    // dual-rail mapper would emit colliding `a_p`/`a_n` ports. Admission
    // lint must refuse it with the stable code, before any shard work.
    match submit(
        &mut client,
        "shadow",
        b".model t\n.inputs a\n.outputs a\n.end\n".to_vec(),
    ) {
        Response::Err { kind, verdict } => {
            assert_eq!(kind, "rejected");
            let v = String::from_utf8(verdict).unwrap();
            assert!(v.contains("\"schema\":\"xsfq-serve-verdict/1\""), "{v}");
            assert!(v.contains("\"code\":\"X008\""), "{v}");
            assert!(v.contains("shadows"), "{v}");
        }
        other => panic!("expected Err, got {other:?}"),
    }

    // The shard never saw the job and stays fully alive: a healthy
    // submission on the same connection synthesizes normally.
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    match submit(&mut client, "ctrl", blif_bytes(&aig)) {
        Response::Ok { .. } => {}
        other => panic!("expected Ok after rejection, got {other:?}"),
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn stats_frame_reports_progress() {
    let state = tmpdir("stats");
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    submit(&mut client, "ctrl", blif_bytes(&aig));
    submit(&mut client, "ctrl", blif_bytes(&aig)); // cache hit
    let Response::Stats(json) = client.stats().unwrap() else {
        panic!("expected Stats");
    };
    let json = String::from_utf8(json).unwrap();
    assert!(json.contains("\"schema\":\"xsfq-serve-stats/1\""), "{json}");
    assert!(json.contains("\"completed\":2"), "{json}");
    assert!(json.contains("\"hits\":1"), "{json}");
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn recovered_job_rejected_by_admission_reaches_a_terminal_state() {
    let state = tmpdir("recover-reject");
    // Simulate a previous incarnation that accepted a job this build's
    // admission rejects (unparsable script), then crashed before a D
    // record: journal the S record directly and drop the journal.
    {
        let (j, recovered) = xsfq_serve::journal::Journal::open(&state).unwrap();
        assert!(recovered.is_empty());
        let id = j.next_id();
        j.record_submit(
            id,
            &SubmitRequest {
                script: "repeat { b }".into(), // missing count: parse error
                name: "stale".into(),
                data: b"junk".to_vec(),
                fault: None,
            },
            None,
        )
        .unwrap();
    }
    // First restart recovers the job; admission rejects it, which must
    // still journal a terminal state — not leave it to replay forever.
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    server.shutdown();
    let (_, recovered) = xsfq_serve::journal::Journal::open(&state).unwrap();
    assert!(
        recovered.is_empty(),
        "rejected recovered job must not replay: {recovered:?}"
    );
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn drain_refuses_new_work_and_finishes_queued_work() {
    let state = tmpdir("drain");
    let server = Server::start(ServeConfig::new(&state)).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    let ok = submit(&mut client, "ctrl", blif_bytes(&aig));
    assert!(matches!(ok, Response::Ok { .. }));
    server.shutdown();
    // After shutdown the listener is gone entirely.
    assert!(
        Client::connect(addr).is_err() || {
            let mut c = Client::connect(addr).unwrap();
            c.ping().is_err()
        }
    );
    let _ = fs::remove_dir_all(&state);
}

#[test]
fn timed_daemon_carries_timing_summary_and_matches_timed_solo() {
    use xsfq_timing::TimingOptions;
    let state = tmpdir("timed");
    let mut cfg = ServeConfig::new(&state);
    cfg.timing = Some(TimingOptions::default());
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let aig = xsfq_benchmarks::by_name("int2float").unwrap();
    // The reference: the same flow with the same timing knob, no daemon.
    let timed_solo = SynthesisFlow::new()
        .script_str(SCRIPT)
        .unwrap()
        .timing(TimingOptions::default())
        .run(&aig)
        .unwrap();
    let mut solo_netlist = Vec::new();
    write_verilog(timed_solo.netlist(), &mut solo_netlist).unwrap();

    match submit(&mut client, "int2float", blif_bytes(&aig)) {
        Response::Ok {
            netlist, report, ..
        } => {
            assert_eq!(netlist, solo_netlist, "netlist differs from timed solo");
            let report = String::from_utf8(report).unwrap();
            assert!(
                report.contains("\"timing\":{") && report.contains("\"balance\":\"full\""),
                "timed verdict must carry the timing summary: {report}"
            );
            assert_eq!(
                scrub_timings(&report),
                scrub_timings(&timed_solo.report.to_json()),
                "report differs from timed solo"
            );
        }
        other => panic!("expected Ok, got {other:?}"),
    }
    server.shutdown();
    let _ = fs::remove_dir_all(&state);
}
