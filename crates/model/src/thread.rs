//! Modeled `std::thread`. Spawned closures run on real OS threads, but the
//! runtime only lets one modeled thread execute between choice points, so
//! the interleaving is fully controlled.

use crate::rt::{set_ctx, with_ctx, ModelAbort};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as RMutex, PoisonError};

pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<RMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a modeled scheduling point) until the thread finishes.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        let outcome = with_ctx(|rt, tid| rt.join_thread(tid, self.tid));
        match outcome {
            Ok(()) => {
                let v = self
                    .result
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take();
                match v {
                    Some(v) => Ok(v),
                    // Result missing without a panic payload: the execution
                    // is aborting; keep unwinding instead of fabricating.
                    None => Err(Box::new(ModelAbort)),
                }
            }
            Err(payload) => Err(payload),
        }
    }

    pub fn is_finished(&self) -> bool {
        // Conservative: treat as still running; callers poll via join.
        false
    }
}

pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(spawn_inner(self.name, f))
    }
}

impl Default for Builder {
    fn default() -> Builder {
        Builder::new()
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_inner(None, f)
}

fn spawn_inner<F, T>(name: Option<String>, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    with_ctx(|rt, parent| {
        let tid = rt.register_thread(parent);
        let result = Arc::new(RMutex::new(None));
        let rt2 = rt.clone();
        let res2 = Arc::clone(&result);
        let real = std::thread::Builder::new()
            .name(name.unwrap_or_else(|| format!("model-t{tid}")))
            .spawn(move || {
                set_ctx(Some((rt2.clone(), tid)));
                let out = catch_unwind(AssertUnwindSafe(f));
                set_ctx(None);
                match out {
                    Ok(v) => {
                        *res2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                        rt2.thread_finished(tid, Ok(()));
                    }
                    Err(payload) => rt2.thread_finished(tid, Err(payload)),
                }
            })
            .expect("spawn real thread for modeled thread");
        rt.adopt_handle(real);
        JoinHandle { tid, result }
    })
}

/// A pure scheduling point.
pub fn yield_now() {
    with_ctx(|rt, tid| rt.yield_now(tid));
}
