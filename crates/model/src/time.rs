//! Logical time for modeled executions. `Instant::now` reads the runtime's
//! step counter (one nanosecond per modeled operation), so clocks advance
//! monotonically and deterministically along a schedule. Durations never
//! gate anything by themselves — `Condvar::wait_timeout` expiry is a
//! schedule choice, not a clock comparison.

use std::time::Duration;

#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    pub fn now() -> Instant {
        let nanos = crate::rt::with_ctx(|rt, _| {
            // Ordering: Relaxed — a monotonically published step counter;
            // a stale read only makes the clock read slightly early, which
            // the schedule explorer treats the same as running earlier.
            rt.now.load(std::sync::atomic::Ordering::Relaxed)
        });
        Instant { nanos }
    }

    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
        self.nanos
            .checked_sub(earlier.nanos)
            .map(Duration::from_nanos)
    }

    pub fn checked_add(&self, dur: Duration) -> Option<Instant> {
        let add = u64::try_from(dur.as_nanos()).ok()?;
        self.nanos.checked_add(add).map(|nanos| Instant { nanos })
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, dur: Duration) -> Instant {
        self.checked_add(dur)
            .expect("overflow when adding duration to instant")
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, dur: Duration) {
        *self = *self + dur;
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        self.saturating_duration_since(other)
    }
}
