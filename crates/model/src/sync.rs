//! Modeled replacements for `std::sync` primitives. Same signatures as the
//! std types (so a facade can swap them in under `cfg(feature = "model")`),
//! but every operation routes through the [`crate::rt`] scheduler.
//!
//! Objects register themselves with the active execution lazily, on first
//! use, so construction works both inside and outside modeled code.

use crate::rt::{with_ctx, AtomicOrd};
use std::sync::{LockResult, OnceLock};

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    /// Modeled `std::sync::atomic::fence`.
    pub fn fence(order: Ordering) {
        with_ctx(|rt, tid| rt.fence(tid, AtomicOrd::from_std(order)));
    }

    macro_rules! model_atomic {
        ($name:ident, $int:ty) => {
            pub struct $name {
                id: OnceLock<usize>,
                init: $int,
            }

            impl $name {
                pub fn new(v: $int) -> $name {
                    $name {
                        id: OnceLock::new(),
                        init: v,
                    }
                }

                fn loc(&self) -> usize {
                    *self
                        .id
                        .get_or_init(|| with_ctx(|rt, _| rt.register_atomic(self.init as u64)))
                }

                pub fn load(&self, order: Ordering) -> $int {
                    let loc = self.loc();
                    with_ctx(|rt, tid| rt.atomic_load(tid, loc, AtomicOrd::from_std(order))) as $int
                }

                pub fn store(&self, val: $int, order: Ordering) {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_store(tid, loc, val as u64, AtomicOrd::from_std(order))
                    });
                }

                pub fn swap(&self, val: $int, order: Ordering) -> $int {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_rmw(tid, loc, AtomicOrd::from_std(order), |_| val as u64)
                    }) as $int
                }

                pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_rmw(tid, loc, AtomicOrd::from_std(order), |old| {
                            (old as $int).wrapping_add(val) as u64
                        })
                    }) as $int
                }

                pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_rmw(tid, loc, AtomicOrd::from_std(order), |old| {
                            (old as $int).wrapping_sub(val) as u64
                        })
                    }) as $int
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_cas(
                            tid,
                            loc,
                            current as u64,
                            new as u64,
                            AtomicOrd::from_std(success),
                            AtomicOrd::from_std(failure),
                            false,
                        )
                    })
                    .map(|v| v as $int)
                    .map_err(|v| v as $int)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    let loc = self.loc();
                    with_ctx(|rt, tid| {
                        rt.atomic_cas(
                            tid,
                            loc,
                            current as u64,
                            new as u64,
                            AtomicOrd::from_std(success),
                            AtomicOrd::from_std(failure),
                            true,
                        )
                    })
                    .map(|v| v as $int)
                    .map_err(|v| v as $int)
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(0 as $int)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_struct(stringify!($name)).finish_non_exhaustive()
                }
            }
        };
    }

    model_atomic!(AtomicUsize, usize);
    model_atomic!(AtomicIsize, isize);
    model_atomic!(AtomicU64, u64);
    model_atomic!(AtomicU32, u32);

    pub struct AtomicBool {
        inner: AtomicUsize,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: AtomicUsize::new(v as usize),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.inner.load(order) != 0
        }

        pub fn store(&self, val: bool, order: Ordering) {
            self.inner.store(val as usize, order);
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            self.inner.swap(val as usize, order) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.inner
                .compare_exchange(current as usize, new as usize, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }

    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AtomicBool").finish_non_exhaustive()
        }
    }
}

/// Modeled `std::sync::Mutex`. Lock acquisition order is explored by the
/// scheduler; the protected data lives in a plain `UnsafeCell` guarded by
/// the modeled ownership.
pub struct Mutex<T: ?Sized> {
    id: OnceLock<usize>,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the modeled runtime serializes guard access — a MutexGuard only
// exists while rt records this thread as the owner, so &mut access through
// the UnsafeCell is exclusive.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above; shared references only travel with modeled ownership.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            id: OnceLock::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn loc(&self) -> usize {
        *self
            .id
            .get_or_init(|| with_ctx(|rt, _| rt.register_mutex()))
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let loc = self.loc();
        with_ctx(|rt, tid| rt.mutex_lock(tid, loc));
        Ok(MutexGuard { lock: self })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: modeled ownership — rt granted this thread the mutex and
        // won't grant it again until the guard drops (or a condvar wait
        // releases it, which consumes the guard).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in Deref — exclusive by modeled ownership.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let loc = self.lock.loc();
        with_ctx(|rt, tid| rt.mutex_unlock(tid, loc));
    }
}

/// Result of a modeled `Condvar::wait_timeout`, mirroring std's.
#[derive(Copy, Clone, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Modeled `std::sync::Condvar`. Timeouts are schedule choice points, not
/// timed waits: the explorer considers both "a wakeup arrives first" and
/// "the timeout fires first" branches.
pub struct Condvar {
    id: OnceLock<usize>,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn loc(&self) -> usize {
        *self
            .id
            .get_or_init(|| with_ctx(|rt, _| rt.register_condvar()))
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let cv = self.loc();
        let lock = guard.lock;
        let mutex = lock.loc();
        // The wait op releases and re-acquires the mutex itself: skip the
        // guard's Drop (which would count a second unlock).
        std::mem::forget(guard);
        with_ctx(|rt, tid| rt.condvar_wait(tid, cv, mutex, false));
        Ok(MutexGuard { lock })
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let cv = self.loc();
        let lock = guard.lock;
        let mutex = lock.loc();
        std::mem::forget(guard);
        let timed_out = with_ctx(|rt, tid| rt.condvar_wait(tid, cv, mutex, true));
        Ok((MutexGuard { lock }, WaitTimeoutResult { timed_out }))
    }

    pub fn notify_one(&self) {
        let cv = self.loc();
        with_ctx(|rt, tid| rt.condvar_notify(tid, cv, false));
    }

    pub fn notify_all(&self) {
        let cv = self.loc();
        with_ctx(|rt, tid| rt.condvar_notify(tid, cv, true));
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
