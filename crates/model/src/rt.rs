//! Execution runtime: the cooperative scheduler, the DFS schedule explorer,
//! per-thread store buffers and the vector-clock race detector.
//!
//! Exactly one modeled thread runs at any instant: every visible operation
//! (atomic access, fence, mutex/condvar op, spawn/join) first passes through
//! [`Rt::enter`], which consults the exploration state and either lets the
//! current thread continue or hands the token to another thread. All other
//! modeled threads are parked on a real condvar inside `enter`, so modeled
//! executions are fully serialized and therefore exactly replayable from the
//! recorded choice sequence.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering as ROrd};
use std::sync::{Arc, Condvar as RCondvar, Mutex as RMutex, MutexGuard as RGuard, PoisonError};

/// Panic payload used to unwind modeled threads when an execution aborts
/// (bug found, bound exceeded). Caught and swallowed by the thread wrappers;
/// user-level `catch_unwind` that intercepts it will re-raise at the next
/// model operation, so unwinding always makes progress.
pub(crate) struct ModelAbort;

/// A vector clock: `vc[t]` = the latest operation of thread `t` known to
/// happen-before the clock's owner.
pub(crate) type Vc = Vec<u32>;

fn vc_join(a: &mut Vc, b: &Vc) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

fn vc_covers(vc: &Vc, tid: usize, clock: u32) -> bool {
    vc.get(tid).copied().unwrap_or(0) >= clock
}

/// One store sitting in a thread's (PSO-style) store buffer: issued but not
/// yet visible to other threads.
#[derive(Clone)]
struct BufStore {
    loc: usize,
    value: u64,
    /// Release clock carried by the store (from a `Release` store or an
    /// earlier release fence): an acquiring load that reads it joins this.
    msg: Option<Vc>,
    /// Store-barrier group: a release fence increments the issuing thread's
    /// group, and a store may not flush while an earlier-group store is
    /// still buffered (pre-fence stores drain first).
    group: u32,
    /// `Release` stores may not flush while *any* earlier store is buffered.
    release: bool,
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    Mutex(usize),
    Condvar(usize),
    Join(usize),
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSt {
    status: Status,
    vc: Vc,
    /// Clocks of release messages read by `Relaxed` loads, pending an
    /// acquire fence (C11 fence synchronization).
    acq_pending: Vc,
    /// Clock at the last release fence; subsequent relaxed stores carry it.
    rel_fence: Option<Vc>,
    group: u32,
    buffer: Vec<BufStore>,
    cv_woken: bool,
    cv_timed_out: bool,
    /// Set when a scheduling decision hands this thread the token while it
    /// is not yet parked at its next operation: the op it eventually enters
    /// was already selected, so it must not consume a fresh decision.
    /// Keeps the choice-point structure independent of real OS timing.
    granted: bool,
    /// Outcome of a finished thread; `join` claims it. An unclaimed `Err`
    /// payload at iteration end is reported as a bug.
    outcome: Option<Result<(), Box<dyn Any + Send>>>,
}

impl ThreadSt {
    fn new(vc: Vc) -> ThreadSt {
        ThreadSt {
            status: Status::Runnable,
            vc,
            acq_pending: Vec::new(),
            rel_fence: None,
            group: 0,
            buffer: Vec::new(),
            cv_woken: false,
            cv_timed_out: false,
            granted: false,
            outcome: None,
        }
    }
}

struct AtomicSt {
    value: u64,
    /// Release clock of the visible store (None: relaxed store with no
    /// earlier release fence, or the initial value).
    msg: Option<Vc>,
}

struct CellSt {
    writer: Option<(usize, u32)>,
    reads: Vec<(usize, u32)>,
}

struct MutexSt {
    owner: Option<usize>,
    /// Release clock from the last unlock.
    msg: Option<Vc>,
}

struct Waiter {
    tid: usize,
    timed: bool,
}

struct CondvarSt {
    waiters: Vec<Waiter>,
}

/// One recorded scheduling decision: which of `options` alternatives was
/// taken. The DFS explorer backtracks over this stack.
#[derive(Copy, Clone)]
struct Choice {
    picked: u32,
    options: u32,
}

#[derive(Clone, Debug)]
enum Opt {
    Run(usize),
    Flush { tid: usize, idx: usize },
    TimeoutWake { cv: usize, tid: usize },
}

pub(crate) struct State {
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicSt>,
    cells: Vec<CellSt>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CondvarSt>,
    active: usize,
    credits: usize,
    steps: u64,
    done: bool,
    abort: bool,
    bug: Option<String>,
    /// DFS choice stack: persists across iterations; `cursor` replays it.
    schedule: Vec<Choice>,
    cursor: usize,
    tracing: bool,
    trace: Vec<String>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Exploration bounds. See [`crate::Explorer`] for the public knobs.
#[derive(Copy, Clone)]
pub(crate) struct Opts {
    pub preemption_bound: usize,
    pub max_steps: u64,
}

pub(crate) struct Rt {
    state: RMutex<State>,
    cv: RCondvar,
    opts: Opts,
    /// Logical time mirror for `model::time::Instant` (1 ns per step);
    /// readable without the state lock.
    pub(crate) now: AtomicU64,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Rt>, usize)>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn set_ctx(rt: Option<(Arc<Rt>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = rt);
}

pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    CTX.with(|c| {
        let ctx = c.borrow();
        let (rt, tid) = ctx.as_ref().expect(
            "xsfq-model primitive used outside a model execution \
             (wrap the test body in xsfq_model::check)",
        );
        f(rt, *tid)
    })
}

macro_rules! trace {
    ($st:expr, $($arg:tt)*) => {
        if $st.tracing {
            let line = format!($($arg)*);
            $st.trace.push(line);
        }
    };
}

impl Rt {
    pub(crate) fn new(opts: Opts) -> Rt {
        Rt {
            state: RMutex::new(State {
                threads: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                active: 0,
                credits: opts.preemption_bound,
                steps: 0,
                done: false,
                abort: false,
                bug: None,
                schedule: Vec::new(),
                cursor: 0,
                tracing: false,
                trace: Vec::new(),
                real_handles: Vec::new(),
            }),
            cv: RCondvar::new(),
            opts,
            now: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> RGuard<'_, State> {
        // The state mutex may be poisoned by a controlled panic (ModelAbort
        // raised while diagnosing a bug); the state is still consistent.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn reset_iteration(&self, tracing: bool) {
        let mut st = self.lock();
        debug_assert!(st.real_handles.is_empty(), "handles joined before reset");
        st.threads.clear();
        st.threads.push(ThreadSt::new(vec![1]));
        st.atomics.clear();
        st.cells.clear();
        st.mutexes.clear();
        st.condvars.clear();
        st.active = 0;
        st.credits = self.opts.preemption_bound;
        st.steps = 0;
        st.done = false;
        st.abort = false;
        st.bug = None;
        st.cursor = 0;
        st.tracing = tracing;
        st.trace.clear();
        self.now.store(0, ROrd::Relaxed);
    }

    pub(crate) fn wait_done(&self) -> (Option<String>, Vec<std::thread::JoinHandle<()>>) {
        let mut st = self.lock();
        while !st.done {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Unclaimed panic payloads (a thread that died and was never
        // joined) are bugs the schedule exposed.
        if st.bug.is_none() {
            let mut found = None;
            for (tid, t) in st.threads.iter_mut().enumerate() {
                if let Some(Err(payload)) = t.outcome.take() {
                    if !payload.is::<ModelAbort>() && found.is_none() {
                        found = Some(format!(
                            "thread {tid} panicked and was never joined: {}",
                            payload_msg(payload.as_ref())
                        ));
                    }
                }
            }
            st.bug = found;
        }
        let handles = std::mem::take(&mut st.real_handles);
        (st.bug.clone(), handles)
    }

    /// Advance the DFS: drop exhausted tail choices, bump the deepest
    /// unexhausted one. Returns false when the whole tree is explored.
    pub(crate) fn backtrack(&self) -> bool {
        let mut st = self.lock();
        let consumed = st.cursor;
        st.schedule.truncate(consumed);
        while let Some(c) = st.schedule.pop() {
            if c.picked + 1 < c.options {
                st.schedule.push(Choice {
                    picked: c.picked + 1,
                    options: c.options,
                });
                return true;
            }
        }
        false
    }

    pub(crate) fn trace_lines(&self) -> Vec<String> {
        self.lock().trace.clone()
    }

    /// Record a bug, abort the execution, and wake everyone so the modeled
    /// threads unwind. Does not panic by itself — callers decide.
    fn flag_bug(&self, st: &mut State, msg: String) {
        if st.bug.is_none() {
            trace!(st, "BUG: {msg}");
            st.bug = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Raise `ModelAbort` unless this thread is already unwinding (never
    /// panic inside a panic — degraded abort-mode ops handle the rest).
    fn raise_abort(&self) -> ! {
        if std::thread::panicking() {
            unreachable!("raise_abort while unwinding");
        }
        std::panic::panic_any(ModelAbort);
    }

    /// Pick the next schedule step. Called with the lock held by the thread
    /// that currently owns the token (or just blocked / finished). Applies
    /// flush / timeout pseudo-actions inline and loops until a `Run` choice
    /// transfers (or keeps) the token.
    fn decide(&self, st: &mut State) {
        loop {
            if st.abort {
                return;
            }
            let opts = self.enumerate(st);
            if opts.is_empty() {
                if st.threads.iter().all(|t| t.status == Status::Finished) {
                    st.done = true;
                    self.cv.notify_all();
                    return;
                }
                let summary: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("t{i}:{:?}", t.status))
                    .collect();
                self.flag_bug(
                    st,
                    format!("deadlock: no runnable thread [{}]", summary.join(" ")),
                );
                return;
            }
            let pick = self.dfs_pick(st, opts.len());
            let cur = st.active;
            let cur_runnable = st.threads[cur].status == Status::Runnable;
            match opts[pick].clone() {
                Opt::Run(t) => {
                    if t != cur && cur_runnable {
                        st.credits -= 1;
                        trace!(st, "preempt t{cur} -> t{t}");
                    } else if t != cur {
                        trace!(st, "switch to t{t}");
                    }
                    if t != cur {
                        // The op this decision selected runs without a
                        // fresh decision, whether t is parked or still on
                        // its way to its next enter().
                        st.threads[t].granted = true;
                    }
                    st.active = t;
                    self.cv.notify_all();
                    return;
                }
                Opt::Flush { tid, idx } => {
                    st.credits -= 1;
                    self.apply_flush(st, tid, idx);
                }
                Opt::TimeoutWake { cv, tid } => {
                    st.credits = st.credits.saturating_sub(1);
                    let cvs = &mut st.condvars[cv];
                    cvs.waiters.retain(|w| w.tid != tid);
                    let t = &mut st.threads[tid];
                    t.cv_woken = true;
                    t.cv_timed_out = true;
                    t.status = Status::Runnable;
                    trace!(st, "t{tid} condvar c{cv} wait times out");
                }
            }
        }
    }

    fn enumerate(&self, st: &State) -> Vec<Opt> {
        let cur = st.active;
        let cur_runnable = st.threads[cur].status == Status::Runnable;
        let mut opts = Vec::new();
        if cur_runnable {
            opts.push(Opt::Run(cur));
        }
        let have_credit = st.credits > 0;
        for (t, th) in st.threads.iter().enumerate() {
            if t != cur && th.status == Status::Runnable && (have_credit || !cur_runnable) {
                opts.push(Opt::Run(t));
            }
        }
        if have_credit {
            for (tid, th) in st.threads.iter().enumerate() {
                for idx in eligible_flushes(&th.buffer) {
                    opts.push(Opt::Flush { tid, idx });
                }
            }
            for (cv, cvs) in st.condvars.iter().enumerate() {
                for w in &cvs.waiters {
                    if w.timed {
                        opts.push(Opt::TimeoutWake { cv, tid: w.tid });
                    }
                }
            }
        }
        if opts.is_empty() {
            // Out of credits with everyone blocked: timed waits still fire
            // for free (a real wait_timeout always eventually wakes), so
            // only untimed blocking can deadlock.
            for (cv, cvs) in st.condvars.iter().enumerate() {
                for w in &cvs.waiters {
                    if w.timed {
                        opts.push(Opt::TimeoutWake { cv, tid: w.tid });
                    }
                }
            }
        }
        opts
    }

    /// Consume one DFS choice: replay the recorded pick, or extend the
    /// stack with alternative 0 (the "natural" continuation).
    fn dfs_pick(&self, st: &mut State, options: usize) -> usize {
        debug_assert!(options > 0);
        if st.cursor < st.schedule.len() {
            let c = st.schedule[st.cursor];
            assert!(
                c.options as usize == options,
                "model execution diverged from the recorded schedule \
                 (choice {} had {} options, now {options}): the checked \
                 closure must be deterministic apart from scheduling",
                st.cursor,
                c.options,
            );
            st.cursor += 1;
            c.picked as usize
        } else {
            st.schedule.push(Choice {
                picked: 0,
                options: options as u32,
            });
            st.cursor += 1;
            0
        }
    }

    fn apply_flush(&self, st: &mut State, tid: usize, idx: usize) {
        let e = st.threads[tid].buffer.remove(idx);
        trace!(st, "flush t{tid} a{}={}", e.loc, e.value);
        let a = &mut st.atomics[e.loc];
        a.value = e.value;
        a.msg = e.msg;
    }

    /// Drain a thread's whole store buffer in issue order (always a legal
    /// flush order). Used by SeqCst operations, RMWs, unlock and exit.
    fn flush_all(&self, st: &mut State, tid: usize) {
        while !st.threads[tid].buffer.is_empty() {
            self.apply_flush(st, tid, 0);
        }
    }

    /// The yield point at the head of every visible operation: waits for
    /// the schedule token, consuming one scheduling decision if this thread
    /// already holds it. Returns the state guard under which the operation
    /// must complete, or `None` in degraded abort-mode (caller performs the
    /// op sequentially-consistently without scheduling).
    fn enter(&self, tid: usize) -> Option<RGuard<'_, State>> {
        let mut st = self.lock();
        if st.abort {
            if std::thread::panicking() {
                return None;
            }
            drop(st);
            self.raise_abort();
        }
        if st.active == tid && st.threads[tid].status == Status::Runnable {
            if st.threads[tid].granted {
                st.threads[tid].granted = false;
            } else {
                self.decide(&mut st);
            }
        }
        while !st.abort && st.active != tid {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            if std::thread::panicking() {
                return None;
            }
            drop(st);
            self.raise_abort();
        }
        st.threads[tid].granted = false;
        st.steps += 1;
        self.now.store(st.steps, ROrd::Relaxed);
        if st.steps > self.opts.max_steps {
            self.flag_bug(
                &mut st,
                format!(
                    "execution exceeded {} steps (livelock, or raise \
                     Explorer::max_steps)",
                    self.opts.max_steps
                ),
            );
            drop(st);
            self.raise_abort();
        }
        let clock = st.threads[tid].vc[tid] + 1;
        st.threads[tid].vc[tid] = clock;
        Some(st)
    }

    /// Hand the token away while blocked; returns once re-scheduled (the
    /// guard is re-acquired). Callers must have set their Blocked status.
    fn block_here<'a>(
        &'a self,
        mut st: RGuard<'a, State>,
        tid: usize,
    ) -> Option<RGuard<'a, State>> {
        self.decide(&mut st);
        while !(st.abort || st.active == tid && st.threads[tid].status == Status::Runnable) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            if std::thread::panicking() {
                return None;
            }
            drop(st);
            self.raise_abort();
        }
        st.threads[tid].granted = false;
        Some(st)
    }

    // --- registration -----------------------------------------------------

    pub(crate) fn register_atomic(&self, init: u64) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicSt {
            value: init,
            msg: None,
        });
        st.atomics.len() - 1
    }

    pub(crate) fn register_cell(&self) -> usize {
        let mut st = self.lock();
        st.cells.push(CellSt {
            writer: None,
            reads: Vec::new(),
        });
        st.cells.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexSt {
            owner: None,
            msg: None,
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CondvarSt {
            waiters: Vec::new(),
        });
        st.condvars.len() - 1
    }

    // --- atomics ----------------------------------------------------------

    pub(crate) fn atomic_load(&self, tid: usize, loc: usize, ord: AtomicOrd) -> u64 {
        let Some(mut st) = self.enter(tid) else {
            return self.lock().atomics[loc].value; // abort-mode: SC read
        };
        // Store forwarding: a thread always sees its own latest store.
        if let Some(e) = st.threads[tid].buffer.iter().rev().find(|e| e.loc == loc) {
            let v = e.value;
            trace!(st, "t{tid} load a{loc} -> {v} (forwarded)");
            return v;
        }
        let value = st.atomics[loc].value;
        let msg = st.atomics[loc].msg.clone();
        if let Some(m) = msg {
            if ord.acquires() {
                vc_join(&mut st.threads[tid].vc, &m);
            } else {
                // A relaxed load defers the synchronization to a later
                // acquire fence (C11 fence-based synchronization).
                vc_join(&mut st.threads[tid].acq_pending, &m);
            }
        }
        trace!(st, "t{tid} load a{loc} -> {value} ({ord:?})");
        value
    }

    pub(crate) fn atomic_store(&self, tid: usize, loc: usize, value: u64, ord: AtomicOrd) {
        let Some(mut st) = self.enter(tid) else {
            self.lock().atomics[loc].value = value;
            return;
        };
        trace!(st, "t{tid} store a{loc}={value} ({ord:?})");
        if ord == AtomicOrd::SeqCst {
            // SC stores drain the buffer and publish immediately: the
            // store-buffer model approximates the SC total order by never
            // letting SC operations be delayed.
            self.flush_all(&mut st, tid);
            let vc = st.threads[tid].vc.clone();
            let a = &mut st.atomics[loc];
            a.value = value;
            a.msg = Some(vc);
            return;
        }
        let th = &mut st.threads[tid];
        let msg = if ord.releases() {
            Some(th.vc.clone())
        } else {
            th.rel_fence.clone()
        };
        let entry = BufStore {
            loc,
            value,
            msg,
            group: th.group,
            release: ord.releases(),
        };
        th.buffer.push(entry);
        // Keep buffers bounded: the oldest store flushes once more than 16
        // are pending (real store buffers are finite too).
        if th.buffer.len() > 16 {
            self.apply_flush(&mut st, tid, 0);
        }
    }

    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        loc: usize,
        ord: AtomicOrd,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let Some(mut st) = self.enter(tid) else {
            let mut g = self.lock();
            let old = g.atomics[loc].value;
            g.atomics[loc].value = f(old);
            return old;
        };
        // RMWs act on the globally visible value: drain the issuing
        // thread's buffer first (stronger than C11 for relaxed RMWs —
        // documented in the crate docs).
        self.flush_all(&mut st, tid);
        let old = st.atomics[loc].value;
        let msg = st.atomics[loc].msg.clone();
        if let Some(m) = &msg {
            if ord.acquires() {
                vc_join(&mut st.threads[tid].vc, m);
            } else {
                vc_join(&mut st.threads[tid].acq_pending, m);
            }
        }
        let new = f(old);
        trace!(st, "t{tid} rmw a{loc}: {old} -> {new} ({ord:?})");
        let vc = st.threads[tid].vc.clone();
        let a = &mut st.atomics[loc];
        a.value = new;
        // An RMW continues the release sequence of the store it read.
        a.msg = match (ord.releases(), msg) {
            (true, Some(mut m)) => {
                vc_join(&mut m, &vc);
                Some(m)
            }
            (true, None) => Some(vc),
            (false, m) => m,
        };
        old
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        loc: usize,
        current: u64,
        new: u64,
        succ: AtomicOrd,
        fail: AtomicOrd,
        weak: bool,
    ) -> Result<u64, u64> {
        let Some(mut st) = self.enter(tid) else {
            let mut g = self.lock();
            let old = g.atomics[loc].value;
            if old == current {
                g.atomics[loc].value = new;
                return Ok(old);
            }
            return Err(old);
        };
        self.flush_all(&mut st, tid);
        let old = st.atomics[loc].value;
        let msg = st.atomics[loc].msg.clone();
        let would_succeed = old == current;
        // compare_exchange_weak may fail spuriously: an explored branch,
        // charged against the preemption budget to keep retry loops finite.
        let spurious = would_succeed && weak && st.credits > 0 && {
            let pick = self.dfs_pick(&mut st, 2);
            if pick == 1 {
                st.credits -= 1;
            }
            pick == 1
        };
        if !would_succeed || spurious {
            if let Some(m) = &msg {
                if fail.acquires() {
                    vc_join(&mut st.threads[tid].vc, m);
                } else {
                    vc_join(&mut st.threads[tid].acq_pending, m);
                }
            }
            trace!(
                st,
                "t{tid} cas a{loc} {current}->{new} failed (old={old}{})",
                if spurious { ", spurious" } else { "" }
            );
            return Err(old);
        }
        if let Some(m) = &msg {
            if succ.acquires() {
                vc_join(&mut st.threads[tid].vc, m);
            } else {
                vc_join(&mut st.threads[tid].acq_pending, m);
            }
        }
        trace!(st, "t{tid} cas a{loc} {current}->{new} ok");
        let vc = st.threads[tid].vc.clone();
        let a = &mut st.atomics[loc];
        a.value = new;
        a.msg = match (succ.releases(), msg) {
            (true, Some(mut m)) => {
                vc_join(&mut m, &vc);
                Some(m)
            }
            (true, None) => Some(vc),
            (false, m) => m,
        };
        Ok(old)
    }

    pub(crate) fn fence(&self, tid: usize, ord: AtomicOrd) {
        let Some(mut st) = self.enter(tid) else {
            return;
        };
        trace!(st, "t{tid} fence ({ord:?})");
        if ord == AtomicOrd::SeqCst {
            self.flush_all(&mut st, tid);
        }
        if ord.acquires() || ord == AtomicOrd::SeqCst {
            let pending = std::mem::take(&mut st.threads[tid].acq_pending);
            vc_join(&mut st.threads[tid].vc, &pending);
        }
        if ord.releases() || ord == AtomicOrd::SeqCst {
            let th = &mut st.threads[tid];
            th.rel_fence = Some(th.vc.clone());
            th.group += 1;
        }
    }

    // --- tracked cells (race detection) -----------------------------------

    pub(crate) fn cell_access(&self, tid: usize, cell: usize, write: bool) {
        let mut st = self.lock();
        if st.abort {
            return;
        }
        let clock = st.threads[tid].vc[tid] + 1;
        st.threads[tid].vc[tid] = clock;
        let vc = st.threads[tid].vc.clone();
        let c = &mut st.cells[cell];
        if let Some((w, wc)) = c.writer {
            if w != tid && !vc_covers(&vc, w, wc) {
                let msg = format!(
                    "data race on cell {cell}: {} by t{tid} not ordered \
                     after write by t{w}",
                    if write { "write" } else { "read" }
                );
                self.flag_bug(&mut st, msg);
                drop(st);
                self.raise_abort();
            }
        }
        if write {
            let racy_read = c
                .reads
                .iter()
                .find(|&&(r, rc)| r != tid && !vc_covers(&vc, r, rc))
                .copied();
            if let Some((r, _)) = racy_read {
                let msg = format!(
                    "data race on cell {cell}: write by t{tid} not ordered \
                     after read by t{r}"
                );
                self.flag_bug(&mut st, msg);
                drop(st);
                self.raise_abort();
            }
            c.writer = Some((tid, clock));
            c.reads.clear();
        } else {
            c.reads.push((tid, clock));
        }
    }

    // --- mutex / condvar --------------------------------------------------

    pub(crate) fn mutex_lock(&self, tid: usize, id: usize) {
        let Some(mut st) = self.enter(tid) else {
            // Abort-mode: real blocking on the runtime condvar keeps
            // mutual exclusion while everything unwinds.
            let mut g = self.lock();
            while st_owner(&g, id).is_some() {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.mutexes[id].owner = Some(tid);
            return;
        };
        loop {
            if st.mutexes[id].owner.is_none() {
                st.mutexes[id].owner = Some(tid);
                let msg = st.mutexes[id].msg.clone();
                if let Some(m) = msg {
                    vc_join(&mut st.threads[tid].vc, &m);
                }
                trace!(st, "t{tid} lock m{id}");
                return;
            }
            trace!(st, "t{tid} blocks on m{id}");
            st.threads[tid].status = Status::Blocked(Block::Mutex(id));
            match self.block_here(st, tid) {
                Some(g) => st = g,
                None => return,
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, id: usize) {
        let Some(mut st) = self.enter(tid) else {
            let mut g = self.lock();
            g.mutexes[id].owner = None;
            self.cv.notify_all();
            return;
        };
        trace!(st, "t{tid} unlock m{id}");
        // Unlock is a release with a full drain: everything the critical
        // section wrote is visible to the next holder.
        self.flush_all(&mut st, tid);
        let vc = st.threads[tid].vc.clone();
        st.mutexes[id].owner = None;
        st.mutexes[id].msg = Some(vc);
        for th in st.threads.iter_mut() {
            if th.status == Status::Blocked(Block::Mutex(id)) {
                th.status = Status::Runnable;
            }
        }
    }

    /// Condvar wait: unlock, park, re-lock once notified (or timed out).
    /// Returns whether the wake was a timeout.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize, timed: bool) -> bool {
        let Some(mut st) = self.enter(tid) else {
            // Abort-mode: spurious wakeup (legal for condvars) — release
            // and immediately re-acquire.
            let mut g = self.lock();
            g.mutexes[mutex].owner = None;
            self.cv.notify_all();
            while st_owner(&g, mutex).is_some() {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.mutexes[mutex].owner = Some(tid);
            return false;
        };
        trace!(st, "t{tid} waits on c{cv} (m{mutex})");
        self.flush_all(&mut st, tid);
        let vc = st.threads[tid].vc.clone();
        st.mutexes[mutex].owner = None;
        st.mutexes[mutex].msg = Some(vc);
        for th in st.threads.iter_mut() {
            if th.status == Status::Blocked(Block::Mutex(mutex)) {
                th.status = Status::Runnable;
            }
        }
        st.condvars[cv].waiters.push(Waiter { tid, timed });
        st.threads[tid].cv_woken = false;
        st.threads[tid].cv_timed_out = false;
        st.threads[tid].status = Status::Blocked(Block::Condvar(cv));
        self.decide(&mut st);
        while !(st.abort || st.active == tid && st.threads[tid].cv_woken) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            if !std::thread::panicking() {
                drop(st);
                self.raise_abort();
            }
            return false;
        }
        let timed_out = st.threads[tid].cv_timed_out;
        st.threads[tid].cv_woken = false;
        st.threads[tid].cv_timed_out = false;
        st.threads[tid].granted = false;
        trace!(st, "t{tid} woke on c{cv}");
        drop(st);
        self.mutex_lock(tid, mutex);
        timed_out
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, all: bool) {
        let Some(mut st) = self.enter(tid) else {
            self.cv.notify_all();
            return;
        };
        if st.condvars[cv].waiters.is_empty() {
            trace!(st, "t{tid} notify c{cv} (no waiters)");
            return;
        }
        let wake: Vec<usize> = if all {
            st.condvars[cv].waiters.drain(..).map(|w| w.tid).collect()
        } else {
            // Which waiter notify_one wakes is unspecified: a choice point.
            let n = st.condvars[cv].waiters.len();
            let pick = if n > 1 { self.dfs_pick(&mut st, n) } else { 0 };
            vec![st.condvars[cv].waiters.remove(pick).tid]
        };
        for w in wake {
            trace!(st, "t{tid} notifies t{w} on c{cv}");
            let th = &mut st.threads[w];
            th.cv_woken = true;
            th.status = Status::Runnable;
        }
    }

    // --- threads ----------------------------------------------------------

    /// Register a child thread; returns its tid. The real OS thread is
    /// spawned by the caller and its handle parked via `adopt_handle`.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = match self.enter(parent) {
            Some(st) => st,
            None => self.lock(),
        };
        // Spawning is a full release edge (real thread creation crosses a
        // syscall barrier): the child must observe every store the parent
        // issued before the spawn, so drain the parent's buffer.
        self.flush_all(&mut st, parent);
        let tid = st.threads.len();
        let mut vc = st.threads[parent].vc.clone();
        if vc.len() <= tid {
            vc.resize(tid + 1, 0);
        }
        vc[tid] = 1;
        st.threads.push(ThreadSt::new(vc));
        trace!(st, "t{parent} spawns t{tid}");
        tid
    }

    pub(crate) fn adopt_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().real_handles.push(handle);
    }

    pub(crate) fn thread_finished(&self, tid: usize, outcome: Result<(), Box<dyn Any + Send>>) {
        let aborted = matches!(&outcome, Err(p) if p.is::<ModelAbort>());
        if !aborted {
            // Thread exit is itself a scheduling point: buffered stores may
            // flush lazily (or be observed still-pending by other threads)
            // before the exit's final drain publishes them. Without this,
            // a thread whose last ops are two relaxed stores could never
            // exhibit their reordering. ModelAbort raised at this point is
            // swallowed — we still record the finish below.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(mut st) = self.enter(tid) {
                    self.flush_all(&mut st, tid);
                }
            }));
        }
        let mut st = self.lock();
        st.threads[tid].buffer.clear();
        let is_panic = outcome.is_err();
        let is_abort = matches!(&outcome, Err(p) if p.is::<ModelAbort>());
        st.threads[tid].outcome = Some(outcome);
        st.threads[tid].status = Status::Finished;
        trace!(
            st,
            "t{tid} finished{}",
            if is_abort {
                " (abort unwind)"
            } else if is_panic {
                " (panicked)"
            } else {
                ""
            }
        );
        for th in st.threads.iter_mut() {
            if th.status == Status::Blocked(Block::Join(tid)) {
                th.status = Status::Runnable;
            }
        }
        if st.abort {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done = true;
            }
            self.cv.notify_all();
            return;
        }
        if st.active == tid {
            self.decide(&mut st);
        }
    }

    /// Block until `target` finishes; returns its outcome payload.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) -> Result<(), Box<dyn Any + Send>> {
        let Some(mut st) = self.enter(tid) else {
            let mut g = self.lock();
            while g.threads[target].status != Status::Finished {
                g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            return g.threads[target].outcome.take().unwrap_or(Ok(()));
        };
        while st.threads[target].status != Status::Finished {
            trace!(st, "t{tid} joins t{target}");
            st.threads[tid].status = Status::Blocked(Block::Join(target));
            match self.block_here(st, tid) {
                Some(g) => st = g,
                None => return Ok(()),
            }
        }
        let target_vc = st.threads[target].vc.clone();
        vc_join(&mut st.threads[tid].vc, &target_vc);
        st.threads[target].outcome.take().unwrap_or(Ok(()))
    }

    /// A pure scheduling point (`thread::yield_now`).
    pub(crate) fn yield_now(&self, tid: usize) {
        let _ = self.enter(tid);
    }
}

fn st_owner(st: &State, id: usize) -> Option<usize> {
    st.mutexes[id].owner
}

/// Flushable buffer entries: the first pending store per location, subject
/// to release-store and release-fence (group) barriers.
fn eligible_flushes(buffer: &[BufStore]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, e) in buffer.iter().enumerate() {
        if buffer[..i].iter().any(|p| p.loc == e.loc) {
            continue; // per-location FIFO (coherence)
        }
        if e.release && i != 0 {
            continue; // a release store drains everything before it
        }
        if buffer[..i].iter().any(|p| p.group < e.group) {
            continue; // pre-fence stores flush first
        }
        out.push(i);
    }
    out
}

pub(crate) fn payload_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The subset of `std::sync::atomic::Ordering` semantics the runtime
/// models, derived from the real enum at each call site.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum AtomicOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl AtomicOrd {
    pub(crate) fn from_std(o: std::sync::atomic::Ordering) -> AtomicOrd {
        use std::sync::atomic::Ordering::*;
        match o {
            Relaxed => AtomicOrd::Relaxed,
            Acquire => AtomicOrd::Acquire,
            Release => AtomicOrd::Release,
            AcqRel => AtomicOrd::AcqRel,
            SeqCst => AtomicOrd::SeqCst,
            _ => AtomicOrd::SeqCst,
        }
    }

    fn acquires(self) -> bool {
        matches!(
            self,
            AtomicOrd::Acquire | AtomicOrd::AcqRel | AtomicOrd::SeqCst
        )
    }

    fn releases(self) -> bool {
        matches!(
            self,
            AtomicOrd::Release | AtomicOrd::AcqRel | AtomicOrd::SeqCst
        )
    }
}
