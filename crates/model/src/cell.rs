//! A dynamically race-checked `UnsafeCell`, in the loom style: plain data
//! accessed through `with`/`with_mut` closures. Every access is recorded
//! against the vector-clock happens-before relation; two accesses that are
//! unordered (and not both reads) abort the execution with a data-race
//! report.

use crate::rt::with_ctx;
use std::sync::OnceLock;

pub struct UnsafeCell<T: ?Sized> {
    id: OnceLock<usize>,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: cross-thread access is dynamically checked — the runtime aborts
// any execution in which two threads touch the cell without a
// happens-before edge, so surviving accesses are data-race-free.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
// SAFETY: as above.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(value: T) -> UnsafeCell<T> {
        UnsafeCell {
            id: OnceLock::new(),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    fn loc(&self) -> usize {
        *self.id.get_or_init(|| with_ctx(|rt, _| rt.register_cell()))
    }

    /// Shared (read) access. The closure receives the raw pointer; it must
    /// not stash it past the call.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let loc = self.loc();
        with_ctx(|rt, tid| rt.cell_access(tid, loc, false));
        f(self.data.get())
    }

    /// Exclusive (write) access, race-checked against all concurrent reads
    /// and writes.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let loc = self.loc();
        with_ctx(|rt, tid| rt.cell_access(tid, loc, true));
        f(self.data.get())
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: &mut self guarantees exclusivity statically.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> UnsafeCell<T> {
        UnsafeCell::new(T::default())
    }
}
