//! # xsfq-model — deterministic bounded model checking for xsfq concurrency
//!
//! A std-only, vendored-style (zero external dependencies) loom-like
//! checker. A test wraps its concurrent scenario in [`check`]; the runtime
//! then executes the closure repeatedly, steering every scheduling decision
//! through a depth-first search over the tree of choice points, until the
//! bounded tree is exhausted or a bug is found. Bugs are: modeled data
//! races (vector-clock happens-before violations on [`cell::UnsafeCell`]),
//! deadlocks, unjoined thread panics (e.g. a failed `assert!` inside a
//! modeled thread), a panic escaping the checked closure itself, and
//! step-bound (livelock) overruns. On a bug the failing schedule is
//! re-executed with tracing and the panic message carries the full
//! event-by-event interleaving.
//!
//! ## Execution model
//!
//! Modeled threads are real OS threads, but at most one executes between
//! choice points: every visible operation (atomic access, fence,
//! mutex/condvar op, spawn/join/yield) parks until the scheduler hands the
//! thread the token. A choice point enumerates, in deterministic order:
//!
//! 1. **Continue** — the current thread performs its next operation;
//! 2. **Run(t)** — preempt to another runnable thread (costs one credit);
//! 3. **Flush(t, i)** — publish one buffered store (costs one credit);
//! 4. **TimeoutWake(cv, t)** — fire a pending `wait_timeout` (one credit;
//!    free when nothing else can run, since real timeouts always fire).
//!
//! Blocking (mutex contention, condvar wait, join) forces a free switch.
//! `compare_exchange_weak` adds a binary spurious-failure choice, also
//! charged one credit. The **preemption bound** ([`Explorer::preemptions`])
//! caps total credits per execution; with bound *p* the search is
//! exhaustive over all schedules with at most *p* non-forced events, which
//! in practice finds ordering bugs at tiny bounds (the classic Chase-Lev
//! double-take needs one preemption; a store-buffer reordering needs a
//! flush plus a preemption) while keeping the tree tractable.
//!
//! ## Memory model (PSO store buffers)
//!
//! Non-SeqCst stores do not publish immediately: each thread has a
//! per-location-FIFO store buffer, and a buffered store becomes visible
//! only when an explicit **Flush** choice (or a mandatory drain) applies
//! it. The thread itself always sees its own latest store (store
//! forwarding). Constraints on flush order:
//!
//! - per-location FIFO (coherence);
//! - a `Release` store flushes only after *everything* before it;
//! - a release fence splits the buffer into barrier groups — pre-fence
//!   stores flush before post-fence stores;
//! - SeqCst stores/fences and all RMWs (including CAS) drain the issuing
//!   thread's buffer and act on globally visible memory.
//!
//! This is processor-store-order (PSO): it exhibits store→store and
//! store→load reordering — exactly the behaviours the Chase-Lev deque's
//! `Release`/`SeqCst` fences exist to forbid — but *not* load→load or
//! load→store reordering, and RMWs are stronger than C11 relaxed RMWs.
//! Consequently a weakened *load* ordering whose only effect is load
//! reordering may escape this checker; the seeded-mutation gates in
//! `crates/exec` only claim catches the model provably makes.
//!
//! Happens-before is tracked with vector clocks: release stores (and
//! release fences, for later relaxed stores) attach the writer's clock to
//! the value; acquire loads join it; relaxed loads park it in a pending set
//! that a later acquire fence joins (C11 fence synchronization). Mutex
//! unlock→lock and condvar signal edges join clocks likewise; RMWs
//! continue the release sequence of the store they displace.
//!
//! ## Determinism and replay
//!
//! The choice-point structure depends only on modeled state, never on real
//! timing (token handoff uses an explicit grant flag, so whether a thread
//! was already parked when scheduled is unobservable). A schedule is the
//! sequence of picked alternatives; replaying it reproduces the execution
//! exactly, which is how failing traces are reconstructed. Checked
//! closures must therefore be deterministic modulo scheduling: no ambient
//! randomness, no wall-clock reads (use [`time::Instant`], which counts
//! modeled steps), no communication outside the modeled primitives.
//!
//! ## Bounds
//!
//! [`Explorer::preemptions`] (default 2) bounds the credits per execution,
//! [`Explorer::max_iterations`] (default 1,000,000) the number of explored
//! schedules, and [`Explorer::max_steps`] (default 20,000) the operations
//! per execution (livelock guard). Exceeding the iteration bound panics —
//! an unfinished exploration must be visible, not silently green.

mod rt;

// Module files use std-like names on disk; import under private aliases and
// re-export through std-shaped public modules below.
#[path = "cell.rs"]
mod cell_impl;
#[path = "sync.rs"]
mod sync_impl;
#[path = "thread.rs"]
mod thread_impl;
#[path = "time.rs"]
mod time_impl;

pub mod cell {
    pub use crate::cell_impl::UnsafeCell;
}

pub mod sync {
    pub use crate::sync_impl::{atomic, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    pub use std::sync::Arc;
}

pub mod thread {
    pub use crate::thread_impl::{spawn, yield_now, Builder, JoinHandle};
}

pub mod time {
    pub use crate::time_impl::Instant;
    pub use std::time::Duration;
}

use rt::{Opts, Rt};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

/// Outcome of a completed (bug-free) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: u64,
    /// True when the bounded tree was exhausted (always, currently: hitting
    /// the iteration cap panics instead of returning).
    pub complete: bool,
}

/// Exploration configuration. See the crate docs for the semantics of each
/// bound.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Preemption-bound credits per execution (preemptive switches, store
    /// flushes, timeout wakes, spurious CAS failures).
    pub preemptions: usize,
    /// Cap on explored schedules; exceeding it panics.
    pub max_iterations: u64,
    /// Cap on modeled operations within one execution (livelock guard).
    pub max_steps: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            preemptions: 2,
            max_iterations: 1_000_000,
            max_steps: 20_000,
        }
    }
}

impl Explorer {
    pub fn new() -> Explorer {
        Explorer::default()
    }

    pub fn preemptions(mut self, n: usize) -> Explorer {
        self.preemptions = n;
        self
    }

    pub fn max_iterations(mut self, n: u64) -> Explorer {
        self.max_iterations = n;
        self
    }

    pub fn max_steps(mut self, n: u64) -> Explorer {
        self.max_steps = n;
        self
    }

    /// Exhaustively explore `f` under the configured bounds. Panics with a
    /// full schedule trace if any execution exhibits a bug.
    pub fn check(&self, f: impl Fn()) -> Report {
        install_quiet_hook();
        let rt = Arc::new(Rt::new(Opts {
            preemption_bound: self.preemptions,
            max_steps: self.max_steps,
        }));
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "xsfq-model: exploration exceeded {} schedules without \
                 exhausting the tree; raise max_iterations or lower the \
                 preemption bound",
                self.max_iterations
            );
            if let Some(bug) = run_once(&rt, &f, false) {
                // Deterministic replay of the failing schedule, tracing on.
                let replay_bug = run_once(&rt, &f, true);
                let trace = rt.trace_lines().join("\n  ");
                panic!(
                    "xsfq-model: bug found on schedule {iterations}: {bug}\n\
                     (replay: {})\n  trace:\n  {trace}",
                    replay_bug.as_deref().unwrap_or("did not reproduce"),
                );
            }
            if !rt.backtrack() {
                return Report {
                    iterations,
                    complete: true,
                };
            }
        }
    }
}

/// Explore `f` with default bounds (preemption bound 2).
pub fn check(f: impl Fn()) -> Report {
    Explorer::default().check(f)
}

fn run_once(rt: &Arc<Rt>, f: &impl Fn(), tracing: bool) -> Option<String> {
    rt.reset_iteration(tracing);
    rt::set_ctx(Some((Arc::clone(rt), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(f));
    rt::set_ctx(None);
    rt.thread_finished(0, outcome.map_err(|e| e as Box<dyn std::any::Any + Send>));
    let (bug, handles) = rt.wait_done();
    for h in handles {
        let _ = h.join();
    }
    bug
}

/// The runtime aborts executions by unwinding modeled threads with a
/// private payload; the default panic hook would print one message per
/// aborted thread per schedule. Filter those, once, process-wide.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<rt::ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}
