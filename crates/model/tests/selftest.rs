//! Sanity checks on the model checker itself: it must find the classic
//! textbook concurrency bugs (store-buffer reordering, data races, lost
//! notify deadlocks) and must stay quiet on correctly synchronized code.
//! These are the checker's own "does the smoke detector detect smoke"
//! tests; the xsfq-specific gates live in `crates/exec/tests/model_gate.rs`
//! and `crates/serve/tests/model_gate.rs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;
use xsfq_model::cell::UnsafeCell;
use xsfq_model::sync::atomic::{fence, AtomicBool, AtomicUsize};
use xsfq_model::sync::{Condvar, Mutex};
use xsfq_model::{check, thread, Explorer};

fn finds_bug_at(bound: usize, f: impl Fn() + 'static) -> String {
    let res = catch_unwind(AssertUnwindSafe(|| {
        Explorer::new().preemptions(bound).check(f);
    }));
    match res {
        Ok(_) => panic!("model checker failed to find the seeded bug"),
        Err(p) => {
            if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = p.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else {
                "<non-string>".into()
            }
        }
    }
}

fn finds_bug(f: impl Fn() + 'static) -> String {
    finds_bug_at(3, f)
}

// --- must-catch: store visibility ---------------------------------------

/// Message passing with only Relaxed orderings: the flag can become
/// visible before the data (store-store reordering) — the checker must
/// find the schedule where the reader sees flag=1, data=0.
#[test]
fn catches_relaxed_message_passing() {
    let msg = finds_bug(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            assert_eq!(data.load(Relaxed), 42, "flag visible before data");
        }
        t.join().unwrap();
    });
    assert!(msg.contains("flag visible before data"), "got: {msg}");
}

/// Same shape with Release/Acquire must be clean.
#[test]
fn passes_release_acquire_message_passing() {
    let report = check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            assert_eq!(data.load(Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// Release/acquire *fences* pairing relaxed accesses must also be clean
/// (the deque relies on exactly this C11 fence-synchronization shape).
#[test]
fn passes_fence_synchronized_message_passing() {
    let report = check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            fence(Release);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            fence(Acquire);
            assert_eq!(data.load(Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// Dekker store-load: without SeqCst fences both threads can read 0
/// (their own stores parked in store buffers) and enter the critical
/// section together.
#[test]
fn catches_dekker_without_seqcst_fence() {
    let msg = finds_bug(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let (a2, b2, w2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&wins));
        let t = thread::spawn(move || {
            a2.store(1, Relaxed);
            if b2.load(Relaxed) == 0 {
                w2.fetch_add(1, SeqCst);
            }
        });
        b.store(1, Relaxed);
        if a.load(Relaxed) == 0 {
            wins.fetch_add(1, SeqCst);
        }
        t.join().unwrap();
        assert!(wins.load(SeqCst) <= 1, "mutual exclusion violated");
    });
    assert!(msg.contains("mutual exclusion violated"), "got: {msg}");
}

/// The same Dekker shape with SeqCst fences between store and load is
/// sound — the fences drain the store buffers.
#[test]
fn passes_dekker_with_seqcst_fence() {
    let report = check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let (a2, b2, w2) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&wins));
        let t = thread::spawn(move || {
            a2.store(1, Relaxed);
            fence(SeqCst);
            if b2.load(Relaxed) == 0 {
                w2.fetch_add(1, SeqCst);
            }
        });
        b.store(1, Relaxed);
        fence(SeqCst);
        if a.load(Relaxed) == 0 {
            wins.fetch_add(1, SeqCst);
        }
        t.join().unwrap();
        assert!(wins.load(SeqCst) <= 1);
    });
    assert!(report.complete);
}

// --- must-catch: data races, lost updates, deadlock ----------------------

#[test]
fn catches_unsynchronized_cell_race() {
    let msg = finds_bug(|| {
        let cell = Arc::new(UnsafeCell::new(0usize));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            // SAFETY: the raw pointer from with_mut is used only inside
            // the closure; the race itself is what the model must catch.
            c2.with_mut(|p| unsafe { *p = 1 });
        });
        cell.with_mut(|p| unsafe { *p = 2 });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "got: {msg}");
}

#[test]
fn passes_flag_guarded_cell() {
    let report = check(|| {
        let cell = Arc::new(UnsafeCell::new(0usize));
        let done = Arc::new(AtomicBool::new(false));
        let (c2, d2) = (Arc::clone(&cell), Arc::clone(&done));
        let t = thread::spawn(move || {
            // SAFETY: writes before the Release store; the reader only
            // touches the cell after its Acquire load observes true.
            c2.with_mut(|p| unsafe { *p = 7 });
            d2.store(true, Release);
        });
        if done.load(Acquire) {
            cell.with(|p| assert_eq!(unsafe { *p }, 7));
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// Relaxed read-modify-write increments are atomic — no lost updates.
#[test]
fn passes_concurrent_fetch_add() {
    let report = check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Relaxed);
        });
        n.fetch_add(1, Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(SeqCst), 2);
    });
    assert!(report.complete);
}

/// A non-atomic load/store increment pair loses updates under preemption.
#[test]
fn catches_load_store_lost_update() {
    let msg = finds_bug(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(SeqCst);
            n2.store(v + 1, SeqCst);
        });
        let v = n.load(SeqCst);
        n.store(v + 1, SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "got: {msg}");
}

/// Missed-wakeup deadlock: the predicate lives outside the mutex, so the
/// signaller can set it and notify in the window between the waiter's
/// check and its park — the notify hits zero waiters and the untimed wait
/// never returns (reported as a deadlock).
#[test]
fn catches_lost_notify_deadlock() {
    let msg = finds_bug(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cv));
        let _t = thread::spawn(move || {
            // Bug: predicate write and notify happen outside the mutex.
            f2.store(true, SeqCst);
            c2.notify_one();
        });
        let g = m.lock().unwrap();
        if !flag.load(SeqCst) {
            let _g = cv.wait(g).unwrap();
        }
    });
    assert!(msg.contains("deadlock"), "got: {msg}");
}

/// The standard predicate-loop condvar pattern is clean.
#[test]
fn passes_predicate_loop_condvar() {
    let report = check(|| {
        let ready = Arc::new((Mutex::new(false), Condvar::new()));
        let r2 = Arc::clone(&ready);
        let t = thread::spawn(move || {
            let (m, cv) = &*r2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        let (m, cv) = &*ready;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// wait_timeout explores the timeout branch, so the waiter escapes even
/// when the notify is lost — and the run must not deadlock.
#[test]
fn passes_wait_timeout_escapes_lost_notify() {
    let report = check(|| {
        let ready = Arc::new((Mutex::new(false), Condvar::new()));
        let r2 = Arc::clone(&ready);
        let t = thread::spawn(move || {
            let (m, cv) = &*r2;
            let mut g = m.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*ready;
        let mut g = m.lock().unwrap();
        while !*g {
            let (g2, _timed_out) = cv
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap();
            g = g2;
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.complete);
}

// --- must-catch: CAS ------------------------------------------------------

/// compare_exchange_weak may fail spuriously: code that treats one failure
/// as definitive breaks under the injected spurious failure.
#[test]
fn catches_weak_cas_without_retry() {
    let msg = finds_bug(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let ok = n.compare_exchange_weak(0, 1, SeqCst, SeqCst).is_ok();
        assert!(ok, "weak cas treated as strong");
    });
    assert!(msg.contains("weak cas treated as strong"), "got: {msg}");
}

/// A weak-CAS retry loop is fine (spurious failures are bounded by the
/// preemption budget, so the loop terminates in the model).
#[test]
fn passes_weak_cas_retry_loop() {
    let report = check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        while n.compare_exchange_weak(0, 1, SeqCst, SeqCst).is_err() {
            std::hint::spin_loop();
        }
        assert_eq!(n.load(SeqCst), 1);
    });
    assert!(report.complete);
}

// --- determinism of the explorer itself ----------------------------------

/// The same scenario must explore the same number of schedules every time
/// (choice structure independent of OS timing).
#[test]
fn exploration_is_deterministic() {
    let scenario = || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Relaxed);
            n2.store(5, Release);
        });
        let _ = n.load(Acquire);
        n.fetch_add(2, Relaxed);
        t.join().unwrap();
    };
    let a = Explorer::new().preemptions(2).check(scenario);
    let b = Explorer::new().preemptions(2).check(scenario);
    let c = Explorer::new().preemptions(2).check(scenario);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(b.iterations, c.iterations);
    assert!(a.complete && a.iterations > 1);
}

/// Unjoined panicking threads surface as bugs rather than vanishing.
#[test]
fn catches_unjoined_thread_panic() {
    let msg = finds_bug(|| {
        let _t = thread::spawn(|| panic!("boom in child"));
        // Handle dropped without join: the panic must still surface.
    });
    assert!(
        msg.contains("boom in child") || msg.contains("panicked"),
        "got: {msg}"
    );
}

/// Modeled Instants are monotone along an execution.
#[test]
fn instants_are_monotonic() {
    let report = check(|| {
        let t0 = xsfq_model::time::Instant::now();
        let n = AtomicUsize::new(0);
        n.store(1, Relaxed);
        let t1 = xsfq_model::time::Instant::now();
        assert!(t1 >= t0);
        assert!(t1 + std::time::Duration::from_nanos(5) > t1);
    });
    assert!(report.complete);
}
