//! # xsfq-cells — superconducting standard-cell libraries
//!
//! The characterized cell data of the paper's Table 2 (xSFQ family:
//! LA, FA, DROC, JTL, splitter, merger, DC-to-SFQ) for both interconnect
//! styles, plus the clocked RSFQ library the baseline flows map to, and a
//! Liberty (`.lib`) exporter with the 1×1 timing LUTs described in §2.3.
//!
//! ```
//! use xsfq_cells::{CellKind, CellLibrary, liberty};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::xsfq_abutted();
//! // The paper's full-adder example: 18 LA/FA cells + 16 splitters = 120 JJ.
//! let jj = 18 * lib.jj(CellKind::La) + 16 * lib.jj(CellKind::Splitter);
//! assert_eq!(jj, 120);
//!
//! let mut text = Vec::new();
//! liberty::write_liberty(&lib, &mut text)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod kinds;
mod library;

pub mod liberty;

pub use kinds::CellKind;
pub use library::{CellLibrary, CellParams, InterconnectStyle};
