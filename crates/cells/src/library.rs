//! Standard-cell library data: JJ counts and propagation delays
//! (paper Table 2), for both interconnect styles, plus the clocked RSFQ
//! library used by the baseline flows.

use std::fmt;

use crate::CellKind;

/// How cells are connected (paper §2.3).
///
/// Passive transmission lines (PTLs) need driver/receiver JJs at every cell
/// boundary, inflating both JJ count and delay; abutted connections avoid
/// that. Table 4/6 comparisons use [`InterconnectStyle::Abutted`] because
/// PBMap/qSeq do not report PTL costs either.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum InterconnectStyle {
    /// Direct cell abutment / JTL hops (the paper's "without PTLs" columns).
    #[default]
    Abutted,
    /// Passive-transmission-line routing with per-cell drivers/receivers
    /// (the paper's "with PTLs" columns).
    Ptl,
}

/// Per-cell physical parameters.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CellParams {
    /// Josephson junction count.
    pub jj: u32,
    /// Propagation delay in picoseconds (for DROC: the Qp clock-to-Q delay;
    /// see [`CellLibrary::droc_delay`] for Qn).
    pub delay_ps: f64,
}

/// A characterized standard-cell library.
///
/// The default libraries carry the paper's Table 2 numbers (MIT-LL SFQ5ee
/// process, HSPICE characterization). The `xsfq-spice` crate re-derives the
/// delay columns from an RCSJ analog model; results land in the same few-ps
/// range but the published values stay the source of truth for the
/// evaluation tables.
///
/// ```
/// use xsfq_cells::{CellKind, CellLibrary};
/// let lib = CellLibrary::xsfq_abutted();
/// assert_eq!(lib.params(CellKind::La).jj, 4);
/// assert_eq!(lib.params(CellKind::Splitter).jj, 3);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct CellLibrary {
    name: String,
    style: InterconnectStyle,
    /// Footnote 1 of the paper: splitter outputs are assumed abutted to
    /// their fanout cells, so splitters keep their 3-JJ cost even in PTL
    /// mode (this is what makes the full-adder example 264 JJs).
    splitters_abutted_in_ptl: bool,
}

impl CellLibrary {
    /// xSFQ library, "without PTLs" column of Table 2.
    pub fn xsfq_abutted() -> Self {
        CellLibrary {
            name: "xsfq_sfq5ee_abutted".into(),
            style: InterconnectStyle::Abutted,
            splitters_abutted_in_ptl: true,
        }
    }

    /// xSFQ library, "with PTLs" column of Table 2.
    pub fn xsfq_ptl() -> Self {
        CellLibrary {
            name: "xsfq_sfq5ee_ptl".into(),
            style: InterconnectStyle::Ptl,
            splitters_abutted_in_ptl: true,
        }
    }

    /// xSFQ library with a given interconnect style.
    pub fn xsfq(style: InterconnectStyle) -> Self {
        match style {
            InterconnectStyle::Abutted => Self::xsfq_abutted(),
            InterconnectStyle::Ptl => Self::xsfq_ptl(),
        }
    }

    /// Clocked RSFQ library for the baseline flows (abutted style, matching
    /// how PBMap/qSeq report JJ counts).
    ///
    /// JJ costs follow the conventional-SFQ numbers the paper quotes
    /// ("an average of 10 JJs" per logic cell, 3-JJ splitters) and the
    /// published ERSFQ/RSFQ cell libraries: AND2 = 12, OR2 = 10, XOR2 = 11,
    /// NOT = 10, DFF/DRO = 6, splitter = 3, merger = 5.
    pub fn rsfq() -> Self {
        CellLibrary {
            name: "rsfq_baseline".into(),
            style: InterconnectStyle::Abutted,
            splitters_abutted_in_ptl: true,
        }
    }

    /// Library name (used in the Liberty header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interconnect style this library was characterized for.
    pub fn style(&self) -> InterconnectStyle {
        self.style
    }

    /// JJ count and delay for a cell.
    pub fn params(&self, kind: CellKind) -> CellParams {
        let ptl = self.style == InterconnectStyle::Ptl;
        match kind {
            CellKind::Jtl => pick(ptl, (2, 4.6), (7, 17.0)),
            CellKind::La => pick(ptl, (4, 7.2), (12, 19.9)),
            CellKind::Fa => pick(ptl, (4, 9.5), (12, 24.7)),
            CellKind::Splitter => {
                if ptl && !self.splitters_abutted_in_ptl {
                    CellParams {
                        jj: 10,
                        delay_ps: 19.7,
                    }
                } else {
                    CellParams {
                        jj: 3,
                        delay_ps: 5.1,
                    }
                }
            }
            // §3.2: "only a merger cell (5 JJs)"; delay assumed ≈ splitter's.
            CellKind::Merger => pick(ptl, (5, 6.3), (12, 20.9)),
            // §2.2: a 4-JJ converter on a global DC line; no timing arc.
            CellKind::DcToSfq => pick(ptl, (4, 0.0), (4, 0.0)),
            CellKind::Droc { preload } => {
                let base = pick(ptl, (13, 6.7), (27, 18.0));
                CellParams {
                    jj: base.jj + if preload { 9 } else { 0 },
                    delay_ps: base.delay_ps,
                }
            }
            // RSFQ baseline cells (see `rsfq()` docs for sourcing).
            CellKind::RsfqAnd => CellParams {
                jj: 12,
                delay_ps: 9.0,
            },
            CellKind::RsfqOr => CellParams {
                jj: 10,
                delay_ps: 8.0,
            },
            CellKind::RsfqXor => CellParams {
                jj: 11,
                delay_ps: 9.0,
            },
            CellKind::RsfqNot => CellParams {
                jj: 10,
                delay_ps: 9.0,
            },
            CellKind::RsfqDff => CellParams {
                jj: 6,
                delay_ps: 7.0,
            },
            CellKind::RsfqSplitter => CellParams {
                jj: 3,
                delay_ps: 5.1,
            },
            CellKind::RsfqMerger => CellParams {
                jj: 5,
                delay_ps: 6.3,
            },
        }
    }

    /// JJ count for a cell.
    pub fn jj(&self, kind: CellKind) -> u32 {
        self.params(kind).jj
    }

    /// Propagation delay (ps) for a cell; for DROC this is the Qp output.
    pub fn delay(&self, kind: CellKind) -> f64 {
        self.params(kind).delay_ps
    }

    /// DROC clock-to-Q delay per output polarity (Table 2 lists Qp and Qn
    /// separately: 6.7 / 9.5 ps without PTLs, 18 / 21.5 ps with).
    pub fn droc_delay(&self, qn: bool) -> f64 {
        let ptl = self.style == InterconnectStyle::Ptl;
        match (qn, ptl) {
            (false, false) => 6.7,
            (true, false) => 9.5,
            (false, true) => 18.0,
            (true, true) => 21.5,
        }
    }

    /// All cells this library characterizes (used by the Liberty writer and
    /// the Table 2 regeneration binary).
    pub fn cells(&self) -> Vec<CellKind> {
        vec![
            CellKind::Jtl,
            CellKind::La,
            CellKind::Fa,
            CellKind::Droc { preload: false },
            CellKind::Droc { preload: true },
            CellKind::Splitter,
            CellKind::Merger,
            CellKind::DcToSfq,
        ]
    }
}

fn pick(ptl: bool, abutted: (u32, f64), with_ptl: (u32, f64)) -> CellParams {
    let (jj, delay_ps) = if ptl { with_ptl } else { abutted };
    CellParams { jj, delay_ps }
}

impl fmt::Display for CellLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library '{}' ({:?})", self.name, self.style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_without_ptl() {
        let lib = CellLibrary::xsfq_abutted();
        assert_eq!(lib.jj(CellKind::Jtl), 2);
        assert!((lib.delay(CellKind::Jtl) - 4.6).abs() < 1e-9);
        assert_eq!(lib.jj(CellKind::La), 4);
        assert!((lib.delay(CellKind::La) - 7.2).abs() < 1e-9);
        assert_eq!(lib.jj(CellKind::Fa), 4);
        assert!((lib.delay(CellKind::Fa) - 9.5).abs() < 1e-9);
        assert_eq!(lib.jj(CellKind::Droc { preload: false }), 13);
        assert_eq!(lib.jj(CellKind::Droc { preload: true }), 22);
        assert_eq!(lib.jj(CellKind::Splitter), 3);
        assert!((lib.droc_delay(false) - 6.7).abs() < 1e-9);
        assert!((lib.droc_delay(true) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn table2_values_with_ptl() {
        let lib = CellLibrary::xsfq_ptl();
        assert_eq!(lib.jj(CellKind::Jtl), 7);
        assert_eq!(lib.jj(CellKind::La), 12);
        assert_eq!(lib.jj(CellKind::Fa), 12);
        assert_eq!(lib.jj(CellKind::Droc { preload: false }), 27);
        assert_eq!(lib.jj(CellKind::Droc { preload: true }), 36);
        // Footnote 1: splitters abut their fanout even in PTL mode.
        assert_eq!(lib.jj(CellKind::Splitter), 3);
        assert!((lib.droc_delay(false) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn preload_hardware_is_nine_jjs() {
        // DC-to-SFQ (4) + merger (5) = 9, paper Table 2 caption.
        let lib = CellLibrary::xsfq_abutted();
        let delta =
            lib.jj(CellKind::Droc { preload: true }) - lib.jj(CellKind::Droc { preload: false });
        assert_eq!(delta, 9);
        assert_eq!(delta, lib.jj(CellKind::DcToSfq) + lib.jj(CellKind::Merger));
    }

    #[test]
    fn full_adder_example_jj_math() {
        // §3.1.1: 18 LA/FA + 16 splitters = 120 JJs without PTLs, 264 with.
        let abutted = CellLibrary::xsfq_abutted();
        let total = 18 * abutted.jj(CellKind::La) + 16 * abutted.jj(CellKind::Splitter);
        assert_eq!(total, 120);
        let ptl = CellLibrary::xsfq_ptl();
        let total = 18 * ptl.jj(CellKind::La) + 16 * ptl.jj(CellKind::Splitter);
        assert_eq!(total, 264);
    }

    #[test]
    fn rsfq_library_costs() {
        let lib = CellLibrary::rsfq();
        assert_eq!(lib.jj(CellKind::RsfqDff), 6);
        assert_eq!(lib.jj(CellKind::RsfqSplitter), 3);
        assert!(
            lib.jj(CellKind::RsfqAnd) >= 10,
            "conventional cells ≈ 10 JJ"
        );
    }
}
