//! Liberty (`.lib`) export of a characterized cell library.
//!
//! Paper §2.3: because PTL routing collapses timing arcs to single values,
//! the Liberty tables are 1×1 look-up tables. The output here is accepted by
//! conventional timing-driven tools and carries the JJ count as the cell
//! `area` attribute (the standard trick in superconducting PDKs).

use std::io::Write;

use crate::{CellKind, CellLibrary};

/// Write `library` as a Liberty file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_liberty<W: Write>(library: &CellLibrary, mut w: W) -> std::io::Result<()> {
    writeln!(w, "library ({}) {{", library.name())?;
    writeln!(w, "  delay_model : table_lookup;")?;
    writeln!(w, "  time_unit : \"1ps\";")?;
    writeln!(w, "  /* area encodes the Josephson junction count */")?;
    writeln!(w, "  lu_table_template (single_value) {{")?;
    writeln!(w, "    variable_1 : input_net_transition;")?;
    writeln!(w, "    index_1 (\"1.0\");")?;
    writeln!(w, "  }}")?;

    for kind in library.cells() {
        write_cell(library, kind, &mut w)?;
    }
    writeln!(w, "}}")
}

fn write_cell<W: Write>(lib: &CellLibrary, kind: CellKind, w: &mut W) -> std::io::Result<()> {
    let p = lib.params(kind);
    writeln!(w, "  cell ({}) {{", kind.name())?;
    writeln!(w, "    area : {};", p.jj)?;
    match kind {
        CellKind::La | CellKind::Fa => {
            let function = if kind == CellKind::La {
                "(a & b)"
            } else {
                "(a | b)"
            };
            writeln!(w, "    pin (a) {{ direction : input; }}")?;
            writeln!(w, "    pin (b) {{ direction : input; }}")?;
            writeln!(w, "    pin (q) {{")?;
            writeln!(w, "      direction : output;")?;
            writeln!(w, "      function : \"{function}\";")?;
            write_arc(w, "a b", p.delay_ps)?;
            writeln!(w, "    }}")?;
        }
        CellKind::Jtl | CellKind::Splitter | CellKind::Merger => {
            writeln!(w, "    pin (a) {{ direction : input; }}")?;
            if kind == CellKind::Merger {
                writeln!(w, "    pin (b) {{ direction : input; }}")?;
            }
            let outs: &[&str] = if kind == CellKind::Splitter {
                &["q0", "q1"]
            } else {
                &["q"]
            };
            for out in outs {
                writeln!(w, "    pin ({out}) {{")?;
                writeln!(w, "      direction : output;")?;
                writeln!(w, "      function : \"a\";")?;
                write_arc(w, "a", p.delay_ps)?;
                writeln!(w, "    }}")?;
            }
        }
        CellKind::DcToSfq => {
            writeln!(w, "    pin (q) {{ direction : output; }}")?;
        }
        CellKind::Droc { .. } => {
            writeln!(
                w,
                "    ff (IQ, IQN) {{ clocked_on : \"clk\"; next_state : \"d\"; }}"
            )?;
            writeln!(w, "    pin (d) {{ direction : input; }}")?;
            writeln!(w, "    pin (clk) {{ direction : input; clock : true; }}")?;
            for (pin, qn) in [("qp", false), ("qn", true)] {
                writeln!(w, "    pin ({pin}) {{")?;
                writeln!(w, "      direction : output;")?;
                writeln!(w, "      function : \"{}\";", if qn { "IQN" } else { "IQ" })?;
                write_arc(w, "clk", lib.droc_delay(qn))?;
                writeln!(w, "    }}")?;
            }
        }
        // RSFQ cells are not part of the xSFQ deliverable library.
        _ => {}
    }
    writeln!(w, "  }}")
}

fn write_arc<W: Write>(w: &mut W, related: &str, delay_ps: f64) -> std::io::Result<()> {
    writeln!(w, "      timing () {{")?;
    writeln!(w, "        related_pin : \"{related}\";")?;
    writeln!(
        w,
        "        cell_rise (single_value) {{ values (\"{delay_ps:.1}\"); }}"
    )?;
    writeln!(
        w,
        "        cell_fall (single_value) {{ values (\"{delay_ps:.1}\"); }}"
    )?;
    writeln!(w, "      }}")
}

/// Read the delay arcs back out of Liberty text produced by
/// [`write_liberty`]: one `(cell, pin, delay_ps)` triple per output pin's
/// `cell_rise` table, in file order.
///
/// This is the round-trip half of the export: the timing engine in
/// `xsfq-timing` reads its delays from [`CellLibrary::delay`] /
/// [`CellLibrary::droc_delay`], and those are exactly the values
/// [`write_liberty`] prints, so `parse_arc_delays(liberty) == library`
/// pins that the `.lib` a downstream tool consumes and the arrival
/// windows our own engine computes can never disagree.
///
/// The parser is a line scanner for this crate's own output dialect (it
/// tracks `cell (...)` / `pin (...)` headers and `cell_rise
/// (single_value)` value lines); unparseable lines are skipped, so it is
/// total on arbitrary text.
pub fn parse_arc_delays(liberty: &str) -> Vec<(String, String, f64)> {
    fn header_name<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
        let rest = line.strip_prefix(keyword)?.trim_start();
        let rest = rest.strip_prefix('(')?;
        let end = rest.find(')')?;
        Some(rest[..end].trim())
    }
    let mut arcs = Vec::new();
    let mut cell: Option<String> = None;
    let mut pin: Option<String> = None;
    for raw in liberty.lines() {
        let line = raw.trim();
        if let Some(name) = header_name(line, "cell ") {
            cell = Some(name.to_string());
            pin = None;
        } else if let Some(name) = header_name(line, "pin ") {
            pin = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("cell_rise (single_value)") {
            let (Some(cell), Some(pin)) = (&cell, &pin) else {
                continue;
            };
            let Some(start) = rest.find('"') else {
                continue;
            };
            let Some(len) = rest[start + 1..].find('"') else {
                continue;
            };
            if let Ok(delay) = rest[start + 1..start + 1 + len].parse::<f64>() {
                arcs.push((cell.clone(), pin.clone(), delay));
            }
        }
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liberty_contains_all_cells_and_values() {
        let lib = CellLibrary::xsfq_abutted();
        let mut buf = Vec::new();
        write_liberty(&lib, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for cell in [
            "JTL", "LA", "FA", "DROC", "DROC_P", "SPLIT", "MERGE", "DC2SFQ",
        ] {
            assert!(text.contains(&format!("cell ({cell})")), "missing {cell}");
        }
        // Table 2 spot checks.
        assert!(text.contains("area : 4;"), "LA/FA area");
        assert!(text.contains("values (\"7.2\")"), "LA delay");
        assert!(text.contains("values (\"9.5\")"), "FA / DROC Qn delay");
        assert!(text.contains("values (\"6.7\")"), "DROC Qp delay");
        assert!(text.contains("area : 22;"), "preloaded DROC area");
    }

    #[test]
    fn delay_arcs_round_trip_to_the_timing_model() {
        // The values the xsfq-timing engine reads (`CellLibrary::delay`,
        // `droc_delay`) and the arcs the Liberty export carries must be the
        // same numbers — this pins both directions, for both styles.
        for lib in [CellLibrary::xsfq_abutted(), CellLibrary::xsfq_ptl()] {
            let mut buf = Vec::new();
            write_liberty(&lib, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            let arcs = parse_arc_delays(&text);
            let arc = |cell: &str, pin: &str| -> f64 {
                arcs.iter()
                    .find(|(c, p, _)| c == cell && p == pin)
                    .unwrap_or_else(|| panic!("missing arc {cell}/{pin}"))
                    .2
            };
            // The path-balancing buffer and the splitter: the two kinds the
            // timing stage inserts or re-times around.
            assert_eq!(arc("JTL", "q"), lib.delay(CellKind::Jtl));
            assert_eq!(arc("SPLIT", "q0"), lib.delay(CellKind::Splitter));
            assert_eq!(arc("SPLIT", "q1"), lib.delay(CellKind::Splitter));
            // Logic and storage arcs agree with the engine's launch model.
            assert_eq!(arc("LA", "q"), lib.delay(CellKind::La));
            assert_eq!(arc("FA", "q"), lib.delay(CellKind::Fa));
            assert_eq!(arc("MERGE", "q"), lib.delay(CellKind::Merger));
            assert_eq!(arc("DROC", "qp"), lib.droc_delay(false));
            assert_eq!(arc("DROC", "qn"), lib.droc_delay(true));
            // Every arc in the file round-trips to a library value.
            for (cell, pin, delay) in &arcs {
                assert!(delay.is_finite(), "arc {cell}/{pin} not finite");
            }
        }
        // Abutted spot values (Table 2), pinned literally so a library edit
        // that silently shifts the buffers the balancer sizes with fails
        // loudly here.
        let lib = CellLibrary::xsfq_abutted();
        assert_eq!(lib.delay(CellKind::Jtl), 4.6);
        assert_eq!(lib.delay(CellKind::Splitter), 5.1);
    }

    #[test]
    fn liberty_is_balanced() {
        let lib = CellLibrary::xsfq_ptl();
        let mut buf = Vec::new();
        write_liberty(&lib, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close, "unbalanced braces");
    }
}
