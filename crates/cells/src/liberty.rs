//! Liberty (`.lib`) export of a characterized cell library.
//!
//! Paper §2.3: because PTL routing collapses timing arcs to single values,
//! the Liberty tables are 1×1 look-up tables. The output here is accepted by
//! conventional timing-driven tools and carries the JJ count as the cell
//! `area` attribute (the standard trick in superconducting PDKs).

use std::io::Write;

use crate::{CellKind, CellLibrary};

/// Write `library` as a Liberty file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_liberty<W: Write>(library: &CellLibrary, mut w: W) -> std::io::Result<()> {
    writeln!(w, "library ({}) {{", library.name())?;
    writeln!(w, "  delay_model : table_lookup;")?;
    writeln!(w, "  time_unit : \"1ps\";")?;
    writeln!(w, "  /* area encodes the Josephson junction count */")?;
    writeln!(w, "  lu_table_template (single_value) {{")?;
    writeln!(w, "    variable_1 : input_net_transition;")?;
    writeln!(w, "    index_1 (\"1.0\");")?;
    writeln!(w, "  }}")?;

    for kind in library.cells() {
        write_cell(library, kind, &mut w)?;
    }
    writeln!(w, "}}")
}

fn write_cell<W: Write>(lib: &CellLibrary, kind: CellKind, w: &mut W) -> std::io::Result<()> {
    let p = lib.params(kind);
    writeln!(w, "  cell ({}) {{", kind.name())?;
    writeln!(w, "    area : {};", p.jj)?;
    match kind {
        CellKind::La | CellKind::Fa => {
            let function = if kind == CellKind::La {
                "(a & b)"
            } else {
                "(a | b)"
            };
            writeln!(w, "    pin (a) {{ direction : input; }}")?;
            writeln!(w, "    pin (b) {{ direction : input; }}")?;
            writeln!(w, "    pin (q) {{")?;
            writeln!(w, "      direction : output;")?;
            writeln!(w, "      function : \"{function}\";")?;
            write_arc(w, "a b", p.delay_ps)?;
            writeln!(w, "    }}")?;
        }
        CellKind::Jtl | CellKind::Splitter | CellKind::Merger => {
            writeln!(w, "    pin (a) {{ direction : input; }}")?;
            if kind == CellKind::Merger {
                writeln!(w, "    pin (b) {{ direction : input; }}")?;
            }
            let outs: &[&str] = if kind == CellKind::Splitter {
                &["q0", "q1"]
            } else {
                &["q"]
            };
            for out in outs {
                writeln!(w, "    pin ({out}) {{")?;
                writeln!(w, "      direction : output;")?;
                writeln!(w, "      function : \"a\";")?;
                write_arc(w, "a", p.delay_ps)?;
                writeln!(w, "    }}")?;
            }
        }
        CellKind::DcToSfq => {
            writeln!(w, "    pin (q) {{ direction : output; }}")?;
        }
        CellKind::Droc { .. } => {
            writeln!(
                w,
                "    ff (IQ, IQN) {{ clocked_on : \"clk\"; next_state : \"d\"; }}"
            )?;
            writeln!(w, "    pin (d) {{ direction : input; }}")?;
            writeln!(w, "    pin (clk) {{ direction : input; clock : true; }}")?;
            for (pin, qn) in [("qp", false), ("qn", true)] {
                writeln!(w, "    pin ({pin}) {{")?;
                writeln!(w, "      direction : output;")?;
                writeln!(w, "      function : \"{}\";", if qn { "IQN" } else { "IQ" })?;
                write_arc(w, "clk", lib.droc_delay(qn))?;
                writeln!(w, "    }}")?;
            }
        }
        // RSFQ cells are not part of the xSFQ deliverable library.
        _ => {}
    }
    writeln!(w, "  }}")
}

fn write_arc<W: Write>(w: &mut W, related: &str, delay_ps: f64) -> std::io::Result<()> {
    writeln!(w, "      timing () {{")?;
    writeln!(w, "        related_pin : \"{related}\";")?;
    writeln!(
        w,
        "        cell_rise (single_value) {{ values (\"{delay_ps:.1}\"); }}"
    )?;
    writeln!(
        w,
        "        cell_fall (single_value) {{ values (\"{delay_ps:.1}\"); }}"
    )?;
    writeln!(w, "      }}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liberty_contains_all_cells_and_values() {
        let lib = CellLibrary::xsfq_abutted();
        let mut buf = Vec::new();
        write_liberty(&lib, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for cell in [
            "JTL", "LA", "FA", "DROC", "DROC_P", "SPLIT", "MERGE", "DC2SFQ",
        ] {
            assert!(text.contains(&format!("cell ({cell})")), "missing {cell}");
        }
        // Table 2 spot checks.
        assert!(text.contains("area : 4;"), "LA/FA area");
        assert!(text.contains("values (\"7.2\")"), "LA delay");
        assert!(text.contains("values (\"9.5\")"), "FA / DROC Qn delay");
        assert!(text.contains("values (\"6.7\")"), "DROC Qp delay");
        assert!(text.contains("area : 22;"), "preloaded DROC area");
    }

    #[test]
    fn liberty_is_balanced() {
        let lib = CellLibrary::xsfq_ptl();
        let mut buf = Vec::new();
        write_liberty(&lib, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close, "unbalanced braces");
    }
}
