//! Cell kinds for superconducting netlists.

use std::fmt;

/// Every standard cell used by the flow — the clock-free xSFQ family
/// (paper §2) plus the clocked RSFQ family used by the PBMap/qSeq baselines.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CellKind {
    // --- clock-free xSFQ cells (paper Table 2) ---
    /// Josephson transmission line segment (interconnect repeater).
    Jtl,
    /// Last-Arrival cell: Muller C element used as dual-rail AND (4 JJ).
    La,
    /// First-Arrival cell: inverse C element used as dual-rail OR (4 JJ).
    Fa,
    /// 1→2 pulse splitter (fanout).
    Splitter,
    /// 2→1 pulse merger (confluence buffer).
    Merger,
    /// DC-to-SFQ converter (used to preload DROC cells, §2.2).
    DcToSfq,
    /// Destructive read-out cell with complementary outputs (Qp/Qn). The
    /// `preload` variant carries the DC-to-SFQ + merger preloading hardware
    /// (+9 JJ) that emits a logical 1 in the first cycle (§2.2, Figure 3).
    Droc {
        /// Whether the preloading hardware is attached.
        preload: bool,
    },
    // --- clocked RSFQ cells (baseline flows, §4.2) ---
    /// Clocked two-input AND gate.
    RsfqAnd,
    /// Clocked two-input OR gate.
    RsfqOr,
    /// Clocked two-input XOR gate.
    RsfqXor,
    /// Clocked inverter.
    RsfqNot,
    /// Destructive read-out cell (D flip-flop / path-balancing buffer).
    RsfqDff,
    /// RSFQ pulse splitter (also used for clock distribution).
    RsfqSplitter,
    /// RSFQ confluence buffer.
    RsfqMerger,
}

impl CellKind {
    /// True for cells that require a clock input (RSFQ logic and storage,
    /// plus the synchronous DROC). The count of clocked cells drives the
    /// clock-tree overhead comparison in §4.2.1.
    pub fn is_clocked(self) -> bool {
        matches!(
            self,
            CellKind::Droc { .. }
                | CellKind::RsfqAnd
                | CellKind::RsfqOr
                | CellKind::RsfqXor
                | CellKind::RsfqNot
                | CellKind::RsfqDff
        )
    }

    /// True for the clock-free xSFQ logic cells (LA/FA).
    pub fn is_xsfq_logic(self) -> bool {
        matches!(self, CellKind::La | CellKind::Fa)
    }

    /// True for every clocked-RSFQ-family cell (logic, storage and
    /// interconnect) — the cells that take RSFQ-flavored splitters.
    pub fn is_rsfq(self) -> bool {
        matches!(
            self,
            CellKind::RsfqAnd
                | CellKind::RsfqOr
                | CellKind::RsfqXor
                | CellKind::RsfqNot
                | CellKind::RsfqDff
                | CellKind::RsfqSplitter
                | CellKind::RsfqMerger
        )
    }

    /// True for any storage cell (DROC or RSFQ DFF).
    pub fn is_storage(self) -> bool {
        matches!(self, CellKind::Droc { .. } | CellKind::RsfqDff)
    }

    /// Library cell name (matches the Liberty output).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Jtl => "JTL",
            CellKind::La => "LA",
            CellKind::Fa => "FA",
            CellKind::Splitter => "SPLIT",
            CellKind::Merger => "MERGE",
            CellKind::DcToSfq => "DC2SFQ",
            CellKind::Droc { preload: false } => "DROC",
            CellKind::Droc { preload: true } => "DROC_P",
            CellKind::RsfqAnd => "RSFQ_AND2",
            CellKind::RsfqOr => "RSFQ_OR2",
            CellKind::RsfqXor => "RSFQ_XOR2",
            CellKind::RsfqNot => "RSFQ_NOT",
            CellKind::RsfqDff => "RSFQ_DFF",
            CellKind::RsfqSplitter => "RSFQ_SPLIT",
            CellKind::RsfqMerger => "RSFQ_MERGE",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocked_classification() {
        assert!(!CellKind::La.is_clocked());
        assert!(!CellKind::Fa.is_clocked());
        assert!(!CellKind::Splitter.is_clocked());
        assert!(CellKind::Droc { preload: false }.is_clocked());
        assert!(CellKind::RsfqAnd.is_clocked());
        assert!(CellKind::RsfqDff.is_clocked());
        assert!(!CellKind::RsfqSplitter.is_clocked());
    }

    #[test]
    fn names_are_unique() {
        let all = [
            CellKind::Jtl,
            CellKind::La,
            CellKind::Fa,
            CellKind::Splitter,
            CellKind::Merger,
            CellKind::DcToSfq,
            CellKind::Droc { preload: false },
            CellKind::Droc { preload: true },
            CellKind::RsfqAnd,
            CellKind::RsfqOr,
            CellKind::RsfqXor,
            CellKind::RsfqNot,
            CellKind::RsfqDff,
            CellKind::RsfqSplitter,
            CellKind::RsfqMerger,
        ];
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
