//! Report writers: text (with slack histogram), per-endpoint CSV, JSON,
//! and SDC constraints. Formats are documented in the crate docs; all
//! numeric fields use fixed-precision formatting so golden tests can pin
//! outputs byte-for-byte.

use xsfq_netlist::Netlist;

use crate::analysis::{EndpointKind, TimingAnalysis};
use crate::{json_f64, TimingSummary};

/// Histogram of skew slack (`allowed − skew`) over joins and rail pairs:
/// `(lo, hi, count)` per bin, lowest bin first.
pub fn slack_histogram(analysis: &TimingAnalysis, bins: usize) -> Vec<(f64, f64, usize)> {
    let values: Vec<f64> = analysis
        .joins
        .iter()
        .map(|j| analysis.allowed_skew_ps - j.skew_ps)
        .chain(
            analysis
                .rail_pairs
                .iter()
                .map(|r| analysis.allowed_skew_ps - r.skew_ps),
        )
        .collect();
    if values.is_empty() || bins == 0 {
        return Vec::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / bins as f64).max(1e-12);
    let mut out: Vec<(f64, f64, usize)> = (0..bins)
        .map(|i| (lo + width * i as f64, lo + width * (i + 1) as f64, 0))
        .collect();
    for v in values {
        let b = (((v - lo) / width) as usize).min(bins - 1);
        out[b].2 += 1;
    }
    out
}

/// Human-readable timing report with a 10-bin slack histogram.
pub fn render_report(
    netlist: &Netlist,
    analysis: &TimingAnalysis,
    summary: &TimingSummary,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "timing report — design '{}' (library {}, balance {}, tolerance {:.2} ps)\n",
        netlist.name(),
        netlist.library().name(),
        summary.balance,
        summary.tolerance_ps,
    ));
    s.push_str(&format!("  levels:           {}\n", analysis.num_levels()));
    s.push_str(&format!(
        "  endpoints:        {}\n",
        analysis.endpoints.len()
    ));
    s.push_str(&format!(
        "  joins:            {} (rail pairs: {})\n",
        analysis.joins.len(),
        analysis.rail_pairs.len()
    ));
    s.push_str(&format!(
        "  critical path:    {:.2} ps\n",
        summary.critical_path_ps
    ));
    s.push_str(&format!(
        "  worst skew:       {:.2} ps (allowed {:.2})\n",
        summary.worst_skew_ps, analysis.allowed_skew_ps
    ));
    s.push_str(&format!(
        "  worst slack:      {:.2} ps\n",
        summary.worst_slack_ps
    ));
    s.push_str(&format!(
        "  buffers inserted: {} (+{} JJ)\n",
        summary.buffers_inserted, summary.jj_delta
    ));
    let hist = slack_histogram(analysis, 10);
    if hist.is_empty() {
        s.push_str("  (no joins or rail pairs to histogram)\n");
        return s;
    }
    s.push_str("  skew slack histogram (ps):\n");
    let peak = hist.iter().map(|&(_, _, c)| c).max().unwrap_or(1).max(1);
    for (lo, hi, count) in hist {
        let bar = "#".repeat((count * 40).div_ceil(peak).min(40));
        s.push_str(&format!("  [{lo:8.2}, {hi:8.2}) {count:6} {bar}\n"));
    }
    s
}

/// Per-endpoint CSV: `endpoint,arrival_min_ps,arrival_max_ps,required_ps,slack_ps`.
pub fn render_endpoint_csv(analysis: &TimingAnalysis) -> String {
    let mut s = String::from("endpoint,arrival_min_ps,arrival_max_ps,required_ps,slack_ps\n");
    for e in &analysis.endpoints {
        s.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{:.3}\n",
            csv_field(&e.name),
            e.arrival_min_ps,
            e.arrival_max_ps,
            analysis.critical_path_ps,
            e.slack_ps,
        ));
    }
    s
}

/// JSON report (schema `xsfq-time-report/1`): summary plus an `endpoints`
/// array mirroring the CSV.
pub fn render_json_report(
    netlist: &Netlist,
    analysis: &TimingAnalysis,
    summary: &TimingSummary,
) -> String {
    let mut eps = String::new();
    for (i, e) in analysis.endpoints.iter().enumerate() {
        if i > 0 {
            eps.push(',');
        }
        eps.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"arrival_min_ps\":{},\"arrival_max_ps\":{},\
             \"slack_ps\":{}}}",
            json_escape(&e.name),
            match e.kind {
                EndpointKind::Output => "output",
                EndpointKind::ClockedInput => "clocked_input",
            },
            json_f64(e.arrival_min_ps),
            json_f64(e.arrival_max_ps),
            json_f64(e.slack_ps),
        ));
    }
    format!(
        "{{\"schema\":\"xsfq-time-report/1\",\"design\":\"{}\",\"library\":\"{}\",\
         \"levels\":{},\"joins\":{},\"rail_pairs\":{},\"summary\":{},\"endpoints\":[{}]}}",
        json_escape(netlist.name()),
        json_escape(netlist.library().name()),
        analysis.num_levels(),
        analysis.joins.len(),
        analysis.rail_pairs.len(),
        summary.to_json(),
        eps,
    )
}

/// SDC constraints (dialect `xsfq-time sdc/1`, ps units).
///
/// The analysis result becomes the constraint: a virtual clock `vclk`
/// carries the critical path as its period, and each output port is
/// pinned to its achieved arrival window with `set_max_delay` /
/// `set_min_delay` plus a `set_output_delay` row carrying its slack.
pub fn render_sdc(netlist: &Netlist, analysis: &TimingAnalysis, summary: &TimingSummary) -> String {
    let mut s = String::new();
    s.push_str("# xsfq-time sdc/1\n");
    s.push_str(&format!(
        "# design: {}  library: {}  balance: {}  tolerance_ps: {:.3}\n",
        netlist.name(),
        netlist.library().name(),
        summary.balance,
        summary.tolerance_ps,
    ));
    s.push_str("set_units -time ps\n");
    s.push_str(&format!(
        "create_clock -name vclk -period {:.3}\n",
        summary.critical_path_ps
    ));
    s.push_str(&format!(
        "set_max_delay {:.3} -from [all_inputs] -to [all_outputs]\n",
        summary.critical_path_ps
    ));
    for e in &analysis.endpoints {
        if e.kind != EndpointKind::Output {
            continue;
        }
        s.push_str(&format!(
            "set_max_delay {:.3} -to [get_ports {{{}}}]\n",
            e.arrival_max_ps, e.name
        ));
        s.push_str(&format!(
            "set_min_delay {:.3} -to [get_ports {{{}}}]\n",
            e.arrival_min_ps, e.name
        ));
        s.push_str(&format!(
            "set_output_delay -clock vclk -max {:.3} [get_ports {{{}}}]\n",
            e.slack_ps, e.name
        ));
    }
    s
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Quote a CSV field only when it needs it (commas or quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{balance_netlist, TimingOptions};
    use xsfq_cells::{CellKind, CellLibrary};

    fn sample() -> (Netlist, TimingAnalysis, TimingSummary) {
        let mut n = Netlist::new("sample", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let la1 = n.add_cell(CellKind::La, &[a, b])[0];
        let la2 = n.add_cell(CellKind::La, &[la1, c])[0];
        n.add_output("y", la2);
        let out = balance_netlist(&n, &TimingOptions::default(), None);
        (n, out.analysis, out.summary)
    }

    #[test]
    fn csv_has_header_and_one_row_per_endpoint() {
        let (_, analysis, _) = sample();
        let csv = render_endpoint_csv(&analysis);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "endpoint,arrival_min_ps,arrival_max_ps,required_ps,slack_ps"
        );
        assert_eq!(lines.len(), 1 + analysis.endpoints.len());
        assert!(lines[1].starts_with("y,"));
    }

    #[test]
    fn json_report_carries_schema_and_summary() {
        let (n, analysis, summary) = sample();
        let js = render_json_report(&n, &analysis, &summary);
        assert!(js.starts_with("{\"schema\":\"xsfq-time-report/1\""));
        assert!(js.contains("\"balance\":\"full\""));
        assert!(js.contains("\"buffers_inserted\":1"));
        assert!(js.contains("\"kind\":\"output\""));
    }

    #[test]
    fn sdc_pins_the_achieved_window() {
        let (n, analysis, summary) = sample();
        let sdc = render_sdc(&n, &analysis, &summary);
        assert!(sdc.starts_with("# xsfq-time sdc/1\n"));
        assert!(sdc.contains("set_units -time ps"));
        assert!(sdc.contains("create_clock -name vclk -period 14.400"));
        assert!(sdc.contains("set_max_delay 14.400 -to [get_ports {y}]"));
        assert!(sdc.contains("set_output_delay -clock vclk -max 0.000 [get_ports {y}]"));
    }

    #[test]
    fn report_text_and_histogram_render() {
        let (n, analysis, summary) = sample();
        let txt = render_report(&n, &analysis, &summary);
        assert!(txt.contains("design 'sample'"));
        assert!(txt.contains("buffers inserted: 1 (+2 JJ)"));
        assert!(txt.contains("skew slack histogram"));
        let hist = slack_histogram(&analysis, 10);
        assert_eq!(hist.iter().map(|&(_, _, c)| c).sum::<usize>(), 2);
    }
}
