//! Slack matching: size and insert path-balancing JTL buffers.
//!
//! The slack-matching LP minimizes inserted delay subject to
//! per-join alignment constraints `|arrive(a) − arrive(b)| ≤ tolerance`.
//! On these netlists the LP decouples: every physical net has exactly one
//! sink, so padding one arc never disturbs another path, and the optimum
//! is the longest-path solution — pad each early arc up to (never past)
//! its join's latest arrival, quantized to whole JTLs by flooring. Never
//! overshooting is what keeps the pass a single sweep: the latest arrival
//! at every join is unchanged, so downstream arrivals — and the critical
//! path — are preserved and the pre-balance analysis stays valid
//! everywhere.

use xsfq_cells::CellKind;
use xsfq_exec::ThreadPool;
use xsfq_netlist::Netlist;

use crate::analysis::TimingAnalysis;
use crate::{BalanceMode, TimingOptions, TimingSummary};

/// Where JTL buffers go: `(cell, input pin, count)` plus
/// `(output port index, count)` for dual-rail output alignment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BalancePlan {
    /// JTL chains spliced in front of cell input pins.
    pub pin_pads: Vec<(u32, u8, u32)>,
    /// JTL chains spliced in front of output ports.
    pub port_pads: Vec<(u32, u32)>,
}

impl BalancePlan {
    /// True when nothing needs padding.
    pub fn is_empty(&self) -> bool {
        self.pin_pads.is_empty() && self.port_pads.is_empty()
    }

    /// Total JTL buffers the plan inserts.
    pub fn total(&self) -> usize {
        self.pin_pads
            .iter()
            .map(|&(_, _, k)| k as usize)
            .sum::<usize>()
            + self
                .port_pads
                .iter()
                .map(|&(_, k)| k as usize)
                .sum::<usize>()
    }
}

/// Result of [`balance_netlist`].
#[derive(Clone, Debug)]
pub struct BalanceOutcome {
    /// The rebuilt netlist, or `None` when no buffer was needed (the input
    /// is already balanced — callers keep the original untouched).
    pub netlist: Option<Netlist>,
    /// Timing of the final netlist (post-balance when buffers were
    /// inserted, the input's own analysis otherwise).
    pub analysis: TimingAnalysis,
    /// Compact stage summary for reports and verdicts.
    pub summary: TimingSummary,
}

/// JTL count for one early arc: `diff` ps behind, quantized to whole JTLs
/// without overshooting.
fn pads_for(diff: f64, jtl: f64, mode: BalanceMode) -> u32 {
    // NaN deltas (corrupt delay models) pad nothing, like non-positive ones.
    if diff.is_nan() || jtl.is_nan() || diff <= 0.0 || jtl <= 0.0 {
        return 0;
    }
    // The 1e-9 nudge keeps exact multiples (diff == k·jtl) from flooring
    // to k−1 after float round-off; the clamp bounds pathological delay
    // models.
    let kmax = ((diff / jtl) + 1e-9).floor().min(1e6) as u32;
    match mode {
        BalanceMode::Off => 0,
        BalanceMode::Full => kmax,
        BalanceMode::Budget(b) => {
            if diff <= b {
                0
            } else {
                (((diff - b) / jtl).ceil().min(1e6) as u32).min(kmax)
            }
        }
    }
}

/// Size the JTL padding for every join and dual-rail output pair.
///
/// RSFQ-family joins are skipped (JTL padding is the xSFQ balancing
/// mechanism; clocked RSFQ cells are aligned by their clock, and mixing
/// styles would trip the X007 lint).
pub fn plan_buffers(
    netlist: &Netlist,
    analysis: &TimingAnalysis,
    opts: &TimingOptions,
) -> BalancePlan {
    let jtl = netlist.library().delay(CellKind::Jtl);
    let mut plan = BalancePlan::default();
    for join in &analysis.joins {
        let kind = netlist.cells()[join.cell].kind;
        if kind.is_rsfq() || kind.is_clocked() {
            continue;
        }
        let diff = join.arrival_ps[0] - join.arrival_ps[1];
        let early: u8 = if diff > 0.0 { 1 } else { 0 };
        let k = pads_for(diff.abs(), jtl, opts.balance);
        if k > 0 {
            plan.pin_pads.push((join.cell as u32, early, k));
        }
    }
    for pair in &analysis.rail_pairs {
        let diff = pair.arrival_ps[0] - pair.arrival_ps[1];
        let early = if diff > 0.0 {
            pair.ports[1]
        } else {
            pair.ports[0]
        };
        let k = pads_for(diff.abs(), jtl, opts.balance);
        if k > 0 {
            plan.port_pads.push((early as u32, k));
        }
    }
    plan
}

/// Rebuild the netlist with the plan's JTL chains spliced in.
///
/// The copy preserves cell order and kinds (the original cells form an
/// exact prefix of the result's cell list), port names and order, and the
/// trigger-clocked set; only the pin/port connections named by the plan
/// are routed through freshly appended JTL chains.
pub fn apply_plan(netlist: &Netlist, plan: &BalancePlan) -> Netlist {
    let ncells = netlist.cells().len();
    let mut pin_pad = vec![[0u32; 2]; ncells];
    for &(ci, pin, k) in &plan.pin_pads {
        if (ci as usize) < ncells && (pin as usize) < 2 {
            pin_pad[ci as usize][pin as usize] = k;
        }
    }
    let mut port_pad = vec![0u32; netlist.outputs().len()];
    for &(pi, k) in &plan.port_pads {
        if (pi as usize) < port_pad.len() {
            port_pad[pi as usize] = k;
        }
    }

    let mut out = Netlist::new(netlist.name(), netlist.library().clone());
    let mut net_map = vec![xsfq_netlist::NetId::from_index(0); netlist.num_nets()];
    for port in netlist.inputs() {
        net_map[port.net.index()] = out.add_input(port.name.clone());
    }
    // Phase 1: instantiate every cell deferred so feedback through clocked
    // cells copies cleanly; record the output-net mapping.
    let mut cell_map = Vec::with_capacity(ncells);
    for cell in netlist.cells() {
        let (id, outs) = out.add_cell_deferred(cell.kind);
        for (pin, &net) in cell.outputs.iter().enumerate() {
            if pin < outs.len() {
                net_map[net.index()] = outs[pin];
            }
        }
        cell_map.push(id);
    }
    // Phase 2: wire inputs, splicing JTL chains where the plan says so.
    let nin = |n: xsfq_netlist::NetId| n.index() < net_map.len();
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let arity = out.cells()[cell_map[ci].index()].inputs.len();
        for (pin, &net) in cell.inputs.iter().enumerate().take(arity) {
            if !nin(net) {
                continue; // dangling pin: leave the sentinel in place
            }
            let mut src = net_map[net.index()];
            for _ in 0..pin_pad[ci].get(pin).copied().unwrap_or(0) {
                src = out.add_cell(CellKind::Jtl, &[src])[0];
            }
            out.connect_input(cell_map[ci], pin, src);
        }
    }
    for (pi, port) in netlist.outputs().iter().enumerate() {
        if !nin(port.net) {
            continue;
        }
        let mut src = net_map[port.net.index()];
        for _ in 0..port_pad[pi] {
            src = out.add_cell(CellKind::Jtl, &[src])[0];
        }
        out.add_output(port.name.clone(), src);
    }
    for &tc in netlist.trigger_clocked() {
        if tc.index() < cell_map.len() {
            out.set_trigger_clocked(cell_map[tc.index()]);
        }
    }
    out
}

/// Analyse, size, and (when needed) insert path-balancing JTLs.
///
/// Pass a pool to parallelize the forward sweeps; `None` runs fully
/// sequentially (safe from inside another pool's parallel section).
pub fn balance_netlist(
    netlist: &Netlist,
    opts: &TimingOptions,
    pool: Option<&ThreadPool>,
) -> BalanceOutcome {
    let analyze = |n: &Netlist| match pool {
        Some(p) => TimingAnalysis::analyze_with_pool(n, opts, p),
        None => TimingAnalysis::analyze(n, opts),
    };
    let pre = analyze(netlist);
    let plan = plan_buffers(netlist, &pre, opts);
    if plan.is_empty() {
        let summary = summarize(&pre, 0, 0, opts);
        return BalanceOutcome {
            netlist: None,
            analysis: pre,
            summary,
        };
    }
    let balanced = apply_plan(netlist, &plan);
    let post = analyze(&balanced);
    let buffers = plan.total();
    let jj_delta = buffers as u64 * u64::from(netlist.library().jj(CellKind::Jtl));
    let summary = summarize(&post, buffers, jj_delta, opts);
    BalanceOutcome {
        netlist: Some(balanced),
        analysis: post,
        summary,
    }
}

fn summarize(
    analysis: &TimingAnalysis,
    buffers: usize,
    jj_delta: u64,
    opts: &TimingOptions,
) -> TimingSummary {
    TimingSummary {
        critical_path_ps: analysis.critical_path_ps,
        worst_slack_ps: analysis.worst_slack_ps,
        worst_skew_ps: analysis.worst_skew_ps,
        buffers_inserted: buffers,
        jj_delta,
        tolerance_ps: analysis.tolerance_ps,
        balance: opts.balance.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_cells::CellLibrary;

    /// `(a & b) & c`: the `c` leg trails the LA leg by 7.2 ps at the
    /// second join — more than one JTL quantum, so Full mode pads it.
    fn deep_skew() -> Netlist {
        let mut n = Netlist::new("deep", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let la1 = n.add_cell(CellKind::La, &[a, b])[0];
        let la2 = n.add_cell(CellKind::La, &[la1, c])[0];
        n.add_output("y", la2);
        n
    }

    #[test]
    fn full_balance_pads_and_clears_slack() {
        let n = deep_skew();
        let opts = TimingOptions::default();
        let out = balance_netlist(&n, &opts, None);
        // 7.2 ps skew → one 4.6 ps JTL, residual 2.6 ps < tolerance.
        assert_eq!(out.summary.buffers_inserted, 1);
        assert_eq!(out.summary.jj_delta, 2);
        assert!(out.summary.worst_slack_ps >= 0.0);
        assert!((out.summary.worst_skew_ps - 2.6).abs() < 1e-9);
        let balanced = out.netlist.expect("buffers were inserted");
        assert_eq!(balanced.count_kind(CellKind::Jtl), 1);
        // Critical path is preserved: padding never overshoots.
        let pre = TimingAnalysis::analyze(&n, &opts);
        assert_eq!(out.summary.critical_path_ps, pre.critical_path_ps);
        // The original cells are an exact prefix, ports unchanged.
        for (i, cell) in n.cells().iter().enumerate() {
            assert_eq!(balanced.cells()[i].kind, cell.kind);
        }
        assert_eq!(balanced.outputs().len(), 1);
        assert_eq!(balanced.outputs()[0].name, "y");
        balanced.assert_connected();
    }

    #[test]
    fn balancing_is_idempotent() {
        let n = deep_skew();
        let opts = TimingOptions::default();
        let first = balance_netlist(&n, &opts, None);
        let again = balance_netlist(first.netlist.as_ref().unwrap(), &opts, None);
        assert_eq!(again.summary.buffers_inserted, 0);
        assert!(again.netlist.is_none());
    }

    #[test]
    fn budget_mode_pads_less() {
        let mut n = Netlist::new("wide", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        // Four JTLs on one leg: 18.4 ps of skew at the join.
        let mut long = a;
        for _ in 0..4 {
            long = n.add_cell(CellKind::Jtl, &[long])[0];
        }
        let la = n.add_cell(CellKind::La, &[long, b])[0];
        n.add_output("y", la);
        let full = balance_netlist(&n, &TimingOptions::default(), None);
        assert_eq!(full.summary.buffers_inserted, 4);
        let budget = balance_netlist(
            &n,
            &TimingOptions {
                balance: BalanceMode::Budget(10.0),
                tolerance_ps: None,
            },
            None,
        );
        // Only the skew beyond 10 ps is padded away: ceil(8.4/4.6) = 2.
        assert_eq!(budget.summary.buffers_inserted, 2);
        assert!(budget.summary.worst_skew_ps <= 10.0 + 1e-9);
        assert!(budget.summary.worst_slack_ps >= 0.0);
        let off = balance_netlist(
            &n,
            &TimingOptions {
                balance: BalanceMode::Off,
                tolerance_ps: None,
            },
            None,
        );
        assert_eq!(off.summary.buffers_inserted, 0);
        assert!(off.netlist.is_none());
        assert!(off.summary.worst_slack_ps < 0.0);
    }

    #[test]
    fn rail_pairs_are_aligned() {
        let mut n = Netlist::new("rails", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let s = n.add_cell(CellKind::Splitter, &[a]);
        let mut slow = s[1];
        for _ in 0..2 {
            slow = n.add_cell(CellKind::Jtl, &[slow])[0];
        }
        n.add_output("y_p", s[0]);
        n.add_output("y_n", slow);
        let out = balance_netlist(&n, &TimingOptions::default(), None);
        assert_eq!(out.summary.buffers_inserted, 2);
        assert!(out.summary.worst_slack_ps >= 0.0);
        let balanced = out.netlist.unwrap();
        assert_eq!(balanced.count_kind(CellKind::Jtl), 4);
    }

    #[test]
    fn trigger_clocked_set_survives_rebuild() {
        let mut n = Netlist::new("trig", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let d = n.add_cell(CellKind::Droc { preload: true }, &[a]);
        n.set_trigger_clocked(xsfq_netlist::CellId::from_index(0));
        let la1 = n.add_cell(CellKind::La, &[d[0], b])[0];
        let la2 = n.add_cell(CellKind::La, &[la1, d[1]])[0];
        n.add_output("y", la2);
        let out = balance_netlist(&n, &TimingOptions::default(), None);
        let balanced = out.netlist.expect("skewed joins get padded");
        assert_eq!(balanced.trigger_clocked(), n.trigger_clocked());
        assert!(out.summary.worst_slack_ps >= 0.0);
    }
}
