//! Static timing analysis and slack-matching buffer insertion for mapped
//! xSFQ netlists.
//!
//! The synthesis flow ends at a physical netlist; fabrication needs more: a
//! statement of how late every pulse can arrive, proof that dual-rail pulse
//! pairs stay aligned through every join, and the JTL padding that makes
//! them align. This crate supplies all three:
//!
//! * [`TimingAnalysis`] — a levelized static timing engine over a
//!   [`Netlist`], loading per-cell delays from the netlist's own
//!   [`CellLibrary`](xsfq_cells::CellLibrary) (`delay_ps`, the paper's
//!   Table 2 values — the same numbers `cells::liberty` exports). It
//!   computes longest/shortest arrival windows per net, a backward
//!   required-time sweep, per-net and per-endpoint slack, join-input skew,
//!   and dual-rail output skew. The forward sweep parallelizes across each
//!   level with [`xsfq_exec::ThreadPool`] in the flow's evaluate/commit
//!   mold, so results are bit-identical across thread counts.
//! * [`balance_netlist`] — an LP-shaped slack-matching pass. Because every
//!   physical net has a single sink, the LP's difference constraints
//!   decouple per arc and the optimum is the longest-path solution: each
//!   early arc gets `floor(skew / jtl_delay)` JTL buffers, never
//!   overshooting, so the critical path is preserved while residual skew
//!   drops below one JTL delay. [`BalanceMode`] is the area–delay knob:
//!   `Full` pads every join and dual-rail output pair, `Budget(ps)` only
//!   pads skew beyond the given budget (fewer JJs, looser alignment),
//!   `Off` analyses without inserting anything.
//! * [`artifacts`] — report writers for the `xsfq-time` CLI and the flow's
//!   Timing stage: an ASCII report with a slack histogram, per-endpoint
//!   CSV, a JSON summary, and SDC constraints.
//!
//! # Timing model
//!
//! Launch points are primary inputs (arrive at t = 0) and clocked-cell
//! outputs (arrive at clock-to-Q: [`CellLibrary::droc_delay`] per rail for
//! DROC — the Qp/Qn asymmetry is a real skew source the balancer must
//! absorb — and `delay_ps` for clocked RSFQ cells). Capture points are
//! primary outputs and clocked-cell data inputs. Combinational cells
//! propagate conservative windows: earliest-in + delay for the window
//! minimum, latest-in + delay for the maximum (for first-arrival cells
//! like FA and the merger this over-approximates the window, which is the
//! safe direction for skew checking). Cells on combinational cycles never
//! levelize; their nets stay unresolved and are excluded from endpoints
//! and joins, keeping the engine total on corrupt input — the property
//! `xsfq-lint`'s X011 check relies on.
//!
//! # Slack and skew
//!
//! Every endpoint's required time is the critical path (the latest
//! arrival over all endpoints), so endpoint slack is ≥ 0 by construction
//! and the binding constraint is **skew slack**: `allowed − skew` at every
//! 2-input join and every `name_p`/`name_n` output pair, where `allowed`
//! is the skew tolerance (default: one JTL delay; `Budget(ps)` raises it
//! to the budget when larger). [`TimingAnalysis::worst_slack_ps`] is the
//! minimum over both families — negative exactly when some pulse pair is
//! further apart than the tolerance, and guaranteed ≥ 0 after
//! [`BalanceMode::Full`] balancing because floor quantization leaves
//! residual skew strictly below one JTL delay.
//!
//! # Report formats
//!
//! * **Text** ([`artifacts::render_report`]): critical path, worst
//!   slack/skew, buffer count, and a 10-bin ASCII slack histogram over
//!   joins and rail pairs.
//! * **CSV** ([`artifacts::render_endpoint_csv`]): header
//!   `endpoint,arrival_min_ps,arrival_max_ps,required_ps,slack_ps`, one
//!   row per endpoint (output ports by name, clocked-cell data inputs as
//!   `cell<idx>/<KIND>/d<pin>`).
//! * **JSON** ([`artifacts::render_json_report`], schema
//!   `xsfq-time-report/1`): the [`TimingSummary`] object plus an
//!   `endpoints` array mirroring the CSV.
//! * **SDC** ([`artifacts::render_sdc`], dialect `xsfq-time sdc/1`): ps
//!   units; a virtual clock `vclk` whose period is the critical path;
//!   `set_max_delay`/`set_min_delay` per output port pinning the achieved
//!   arrival window (the analysis result *becomes* the constraint, the
//!   hbcn-constrainer convention); `set_output_delay -clock vclk` rows
//!   carrying endpoint slack. Comment lines carry design/library
//!   provenance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod artifacts;
pub mod balance;

pub use analysis::{EndpointKind, EndpointTiming, JoinTiming, RailPairTiming, TimingAnalysis};
pub use balance::{balance_netlist, plan_buffers, BalanceOutcome, BalancePlan};

use xsfq_netlist::Netlist;

/// Area–delay knob for the slack-matching pass.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum BalanceMode {
    /// Analyse only; insert nothing.
    Off,
    /// Pad only the skew that exceeds the given budget (ps): cheaper in
    /// JJs, residual skew up to `max(budget, tolerance)`.
    Budget(f64),
    /// Pad every join and dual-rail output pair down to sub-JTL residual
    /// skew; worst slack is ≥ 0 afterwards.
    Full,
}

impl BalanceMode {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            BalanceMode::Off => "off",
            BalanceMode::Budget(_) => "budget",
            BalanceMode::Full => "full",
        }
    }
}

/// Configuration for the timing stage.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingOptions {
    /// Buffer-insertion mode.
    pub balance: BalanceMode,
    /// Skew tolerance in ps; `None` means one JTL delay of the netlist's
    /// library (4.6 ps abutted, 17.0 ps PTL).
    pub tolerance_ps: Option<f64>,
}

impl Default for TimingOptions {
    fn default() -> Self {
        TimingOptions {
            balance: BalanceMode::Full,
            tolerance_ps: None,
        }
    }
}

impl TimingOptions {
    /// The effective skew tolerance for a given netlist.
    pub fn tolerance_for(&self, netlist: &Netlist) -> f64 {
        self.tolerance_ps
            .unwrap_or_else(|| netlist.library().delay(xsfq_cells::CellKind::Jtl))
    }

    /// The skew allowance used for slack. With balancing off this is the
    /// raw tolerance (pure analysis). With balancing on, JTL padding
    /// cannot align tighter than one JTL quantum, so the allowance clamps
    /// below to the library's JTL delay — and in [`BalanceMode::Budget`]
    /// mode residual skew up to the budget is the *requested* trade-off,
    /// not a violation, so the budget raises it further.
    pub fn allowed_skew_for(&self, netlist: &Netlist) -> f64 {
        let tol = self.tolerance_for(netlist);
        let jtl = netlist.library().delay(xsfq_cells::CellKind::Jtl);
        match self.balance {
            BalanceMode::Off => tol,
            BalanceMode::Budget(b) => tol.max(b).max(jtl),
            BalanceMode::Full => tol.max(jtl),
        }
    }
}

/// Compact result of the timing stage, carried by `FlowReport` and the
/// daemon verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingSummary {
    /// Latest arrival over all endpoints, ps.
    pub critical_path_ps: f64,
    /// Minimum over endpoint slack and skew slack, ps (negative when some
    /// pulse pair exceeds the allowed skew).
    pub worst_slack_ps: f64,
    /// Largest arrival skew over joins and dual-rail output pairs, ps.
    pub worst_skew_ps: f64,
    /// JTL buffers inserted by the balancer.
    pub buffers_inserted: usize,
    /// JJ cost of the inserted buffers.
    pub jj_delta: u64,
    /// Skew tolerance the analysis ran with, ps.
    pub tolerance_ps: f64,
    /// Balance mode name (`off` / `budget` / `full`).
    pub balance: &'static str,
}

impl TimingSummary {
    /// Render as a JSON object (stable key order, schema-less fragment
    /// embedded in `xsfq-flow-report/1` and `xsfq-time-report/1`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"critical_path_ps\":{},\"worst_slack_ps\":{},\"worst_skew_ps\":{},\
             \"buffers_inserted\":{},\"jj_delta\":{},\"tolerance_ps\":{},\"balance\":\"{}\"}}",
            json_f64(self.critical_path_ps),
            json_f64(self.worst_slack_ps),
            json_f64(self.worst_skew_ps),
            self.buffers_inserted,
            self.jj_delta,
            json_f64(self.tolerance_ps),
            self.balance,
        )
    }
}

/// Format an `f64` as JSON: finite values round-trip via `{:?}`
/// (shortest-representation), non-finite values become `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".into()
    }
}
