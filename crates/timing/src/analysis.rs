//! Levelized arrival/required/slack sweeps over a netlist.
//!
//! See the crate docs for the timing model. The forward sweep follows the
//! flow's evaluate/commit mold: each level's cells are evaluated in
//! parallel from already-committed predecessor arrivals, then committed in
//! ascending cell order — every arithmetic operation happens in a fixed
//! order per cell, so the result is bit-identical across thread counts.

use xsfq_cells::CellKind;
use xsfq_exec::ThreadPool;
use xsfq_netlist::{Driver, NetId, Netlist};

use crate::TimingOptions;

/// What a timing endpoint is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EndpointKind {
    /// A primary output port.
    Output,
    /// A data input of a clocked cell (DROC rank boundary).
    ClockedInput,
}

/// Arrival window and slack at one capture point.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointTiming {
    /// Port name, or `cell<idx>/<KIND>/d<pin>` for clocked-cell inputs.
    pub name: String,
    /// Endpoint family.
    pub kind: EndpointKind,
    /// Net index the endpoint observes.
    pub net: usize,
    /// Earliest arrival, ps.
    pub arrival_min_ps: f64,
    /// Latest arrival, ps.
    pub arrival_max_ps: f64,
    /// `critical_path_ps − arrival_max_ps` (≥ 0 by construction).
    pub slack_ps: f64,
}

/// Latest-arrival skew between the two inputs of a join cell.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinTiming {
    /// Cell index.
    pub cell: usize,
    /// Cell kind.
    pub kind: CellKind,
    /// Latest arrival per input pin, ps.
    pub arrival_ps: [f64; 2],
    /// `|arrival_ps[0] − arrival_ps[1]|`.
    pub skew_ps: f64,
}

/// Latest-arrival skew between a dual-rail `_p`/`_n` output-port pair.
#[derive(Clone, Debug, PartialEq)]
pub struct RailPairTiming {
    /// Port base name (without the `_p`/`_n` suffix).
    pub base: String,
    /// Output-port indices (positive rail, negative rail).
    pub ports: [usize; 2],
    /// Latest arrival per rail, ps.
    pub arrival_ps: [f64; 2],
    /// `|arrival_ps[0] − arrival_ps[1]|`.
    pub skew_ps: f64,
}

/// Full result of a timing sweep.
#[derive(Clone, Debug)]
pub struct TimingAnalysis {
    arrival_min: Vec<f64>,
    arrival_max: Vec<f64>,
    required: Vec<f64>,
    resolved: Vec<bool>,
    num_levels: usize,
    /// Latest arrival over all endpoints, ps (0 for endpoint-free designs).
    pub critical_path_ps: f64,
    /// Largest skew over joins and rail pairs, ps.
    pub worst_skew_ps: f64,
    /// Minimum over endpoint slack and skew slack (`allowed − skew`), ps.
    pub worst_slack_ps: f64,
    /// Skew tolerance the sweep ran with, ps.
    pub tolerance_ps: f64,
    /// Skew allowance used for slack (tolerance, or the budget if larger).
    pub allowed_skew_ps: f64,
    /// Capture points, output ports first (port order), then clocked-cell
    /// data inputs in cell order.
    pub endpoints: Vec<EndpointTiming>,
    /// All cells with ≥ 2 resolved inputs, in cell order.
    pub joins: Vec<JoinTiming>,
    /// Adjacent `_p`/`_n` output-port pairs, in port order.
    pub rail_pairs: Vec<RailPairTiming>,
}

/// Clock-to-Q launch delay for output `pin` of a clocked cell.
fn clock_to_q(netlist: &Netlist, kind: CellKind, pin: usize) -> f64 {
    match kind {
        CellKind::Droc { .. } => netlist.library().droc_delay(pin == 1),
        _ => netlist.library().delay(kind),
    }
}

/// Evaluate one combinational cell's output window from committed input
/// arrivals. Returns `(min, max, ok)`; `ok` is false when any input is
/// missing or unresolved (the cell's outputs then stay unresolved).
fn eval_cell(
    netlist: &Netlist,
    amin: &[f64],
    amax: &[f64],
    resolved: &[bool],
    ci: usize,
) -> (f64, f64, bool) {
    let cell = &netlist.cells()[ci];
    let delay = netlist.library().delay(cell.kind);
    // Input-free cells (DC-to-SFQ) launch at t = 0.
    let (mut lo, mut hi) = (0.0f64, 0.0f64);
    for (k, &n) in cell.inputs.iter().enumerate() {
        let i = n.index();
        if i >= resolved.len() || !resolved[i] {
            return (0.0, 0.0, false);
        }
        if k == 0 {
            lo = amin[i];
            hi = amax[i];
        } else {
            lo = lo.min(amin[i]);
            hi = hi.max(amax[i]);
        }
    }
    (lo + delay, hi + delay, true)
}

impl TimingAnalysis {
    /// Run the sweep sequentially (no thread pool touched — safe from
    /// inside a parallel section, which is how the flow's Timing stage and
    /// the X011 lint call it).
    pub fn analyze(netlist: &Netlist, opts: &TimingOptions) -> TimingAnalysis {
        Self::sweep(netlist, opts, None)
    }

    /// Run the sweep with the forward pass parallelized per level on
    /// `pool`. Bit-identical to [`TimingAnalysis::analyze`] for every
    /// thread count.
    pub fn analyze_with_pool(
        netlist: &Netlist,
        opts: &TimingOptions,
        pool: &ThreadPool,
    ) -> TimingAnalysis {
        Self::sweep(netlist, opts, Some(pool))
    }

    fn sweep(netlist: &Netlist, opts: &TimingOptions, pool: Option<&ThreadPool>) -> TimingAnalysis {
        let ncells = netlist.cells().len();
        let nnets = netlist.num_nets();

        // --- Levelize combinational cells (Kahn waves). Clocked cells are
        // launch points, not members of a level; cells with dangling pins
        // or on combinational cycles never levelize and stay unresolved.
        let mut pending: Vec<u32> = vec![0; ncells];
        let mut dead: Vec<bool> = vec![false; ncells];
        let mut listeners: Vec<Vec<u32>> = vec![Vec::new(); nnets];
        for (ci, cell) in netlist.cells().iter().enumerate() {
            if cell.kind.is_clocked() {
                continue;
            }
            for &n in cell.inputs.iter() {
                if n.index() >= nnets {
                    dead[ci] = true;
                    continue;
                }
                if let Driver::Cell { cell: d, .. } = netlist.driver(n) {
                    if !netlist.cells()[d.index()].kind.is_clocked() {
                        pending[ci] += 1;
                        listeners[n.index()].push(ci as u32);
                    }
                }
            }
        }
        let mut wave: Vec<u32> = (0..ncells as u32)
            .filter(|&ci| {
                let cell = &netlist.cells()[ci as usize];
                !cell.kind.is_clocked() && !dead[ci as usize] && pending[ci as usize] == 0
            })
            .collect();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        while !wave.is_empty() {
            let mut next: Vec<u32> = Vec::new();
            for &ci in &wave {
                for &out in netlist.cells()[ci as usize].outputs.iter() {
                    for &sink in &listeners[out.index()] {
                        pending[sink as usize] -= 1;
                        if pending[sink as usize] == 0 && !dead[sink as usize] {
                            next.push(sink);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            levels.push(std::mem::replace(&mut wave, next));
        }

        // --- Forward sweep: seed launch points, then evaluate/commit per
        // level.
        let mut amin = vec![0.0f64; nnets];
        let mut amax = vec![0.0f64; nnets];
        let mut resolved = vec![false; nnets];
        for port in netlist.inputs() {
            resolved[port.net.index()] = true;
        }
        for cell in netlist.cells() {
            if !cell.kind.is_clocked() {
                continue;
            }
            for (pin, &out) in cell.outputs.iter().enumerate() {
                let d = clock_to_q(netlist, cell.kind, pin);
                amin[out.index()] = d;
                amax[out.index()] = d;
                resolved[out.index()] = true;
            }
        }
        for level in &levels {
            let results: Vec<(f64, f64, bool)> = {
                let (amin, amax, resolved) = (&amin, &amax, &resolved);
                match pool {
                    Some(p) => p.map_init(
                        level,
                        || (),
                        |(), _, &ci| eval_cell(netlist, amin, amax, resolved, ci as usize),
                    ),
                    None => level
                        .iter()
                        .map(|&ci| eval_cell(netlist, amin, amax, resolved, ci as usize))
                        .collect(),
                }
            };
            for (&ci, &(lo, hi, ok)) in level.iter().zip(&results) {
                if !ok {
                    continue;
                }
                for &out in netlist.cells()[ci as usize].outputs.iter() {
                    amin[out.index()] = lo;
                    amax[out.index()] = hi;
                    resolved[out.index()] = true;
                }
            }
        }

        // --- Endpoints and the critical path.
        let mut raw_endpoints: Vec<(String, EndpointKind, usize)> = Vec::new();
        for port in netlist.outputs() {
            let i = port.net.index();
            if i < nnets && resolved[i] {
                raw_endpoints.push((port.name.clone(), EndpointKind::Output, i));
            }
        }
        for (ci, cell) in netlist.cells().iter().enumerate() {
            if !cell.kind.is_clocked() {
                continue;
            }
            for (pin, &n) in cell.inputs.iter().enumerate() {
                let i = n.index();
                if i < nnets && resolved[i] {
                    raw_endpoints.push((
                        format!("cell{ci}/{}/d{pin}", cell.kind),
                        EndpointKind::ClockedInput,
                        i,
                    ));
                }
            }
        }
        let critical = raw_endpoints
            .iter()
            .map(|&(_, _, net)| amax[net])
            .fold(0.0f64, f64::max);

        // --- Backward required-time sweep (sequential: `min` commits are
        // exact and order-independent, so there is nothing to gain from a
        // parallel evaluate here).
        let mut required = vec![f64::INFINITY; nnets];
        for &(_, _, net) in &raw_endpoints {
            required[net] = required[net].min(critical);
        }
        for level in levels.iter().rev() {
            for &ci in level.iter().rev() {
                let cell = &netlist.cells()[ci as usize];
                let delay = netlist.library().delay(cell.kind);
                let rq = cell
                    .outputs
                    .iter()
                    .map(|n| required[n.index()])
                    .fold(f64::INFINITY, f64::min);
                if !rq.is_finite() {
                    continue;
                }
                for &n in cell.inputs.iter() {
                    if n.index() < nnets {
                        required[n.index()] = required[n.index()].min(rq - delay);
                    }
                }
            }
        }

        let endpoints: Vec<EndpointTiming> = raw_endpoints
            .into_iter()
            .map(|(name, kind, net)| EndpointTiming {
                name,
                kind,
                net,
                arrival_min_ps: amin[net],
                arrival_max_ps: amax[net],
                slack_ps: critical - amax[net],
            })
            .collect();

        // --- Joins and dual-rail output pairs.
        let mut joins: Vec<JoinTiming> = Vec::new();
        for (ci, cell) in netlist.cells().iter().enumerate() {
            if cell.inputs.len() < 2 {
                continue;
            }
            let (a, b) = (cell.inputs[0].index(), cell.inputs[1].index());
            if a >= nnets || b >= nnets || !resolved[a] || !resolved[b] {
                continue;
            }
            joins.push(JoinTiming {
                cell: ci,
                kind: cell.kind,
                arrival_ps: [amax[a], amax[b]],
                skew_ps: (amax[a] - amax[b]).abs(),
            });
        }
        let mut rail_pairs: Vec<RailPairTiming> = Vec::new();
        let outs = netlist.outputs();
        for (pi, port) in outs.iter().enumerate() {
            let Some(base) = port.name.strip_suffix("_p") else {
                continue;
            };
            let Some(twin) = outs.get(pi + 1).filter(|q| q.name == format!("{base}_n")) else {
                continue;
            };
            let (a, b) = (port.net.index(), twin.net.index());
            if a >= nnets || b >= nnets || !resolved[a] || !resolved[b] {
                continue;
            }
            rail_pairs.push(RailPairTiming {
                base: base.to_string(),
                ports: [pi, pi + 1],
                arrival_ps: [amax[a], amax[b]],
                skew_ps: (amax[a] - amax[b]).abs(),
            });
        }

        let worst_skew = joins
            .iter()
            .map(|j| j.skew_ps)
            .chain(rail_pairs.iter().map(|r| r.skew_ps))
            .fold(0.0f64, f64::max);
        let tolerance = opts.tolerance_for(netlist);
        let allowed = opts.allowed_skew_for(netlist);
        let mut worst_slack = f64::INFINITY;
        for e in &endpoints {
            worst_slack = worst_slack.min(e.slack_ps);
        }
        if !joins.is_empty() || !rail_pairs.is_empty() {
            worst_slack = worst_slack.min(allowed - worst_skew);
        }
        if !worst_slack.is_finite() {
            worst_slack = 0.0;
        }

        TimingAnalysis {
            arrival_min: amin,
            arrival_max: amax,
            required,
            resolved,
            num_levels: levels.len(),
            critical_path_ps: critical,
            worst_skew_ps: worst_skew,
            worst_slack_ps: worst_slack,
            tolerance_ps: tolerance,
            allowed_skew_ps: allowed,
            endpoints,
            joins,
            rail_pairs,
        }
    }

    /// Arrival window `(min, max)` of a net, if the sweep resolved it.
    pub fn arrival(&self, net: NetId) -> Option<(f64, f64)> {
        let i = net.index();
        (i < self.resolved.len() && self.resolved[i])
            .then(|| (self.arrival_min[i], self.arrival_max[i]))
    }

    /// Per-net slack `required − arrival_max`, if resolved and constrained.
    pub fn slack(&self, net: NetId) -> Option<f64> {
        let i = net.index();
        (i < self.resolved.len() && self.resolved[i] && self.required[i].is_finite())
            .then(|| self.required[i] - self.arrival_max[i])
    }

    /// Number of combinational levels the sweep visited.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BalanceMode, TimingOptions};
    use xsfq_cells::CellLibrary;

    /// `(a & b) | c` with an extra JTL on the `c` leg: LA then FA.
    fn skewed_netlist() -> Netlist {
        let mut n = Netlist::new("skewed", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let la = n.add_cell(CellKind::La, &[a, b])[0];
        let j = n.add_cell(CellKind::Jtl, &[c])[0];
        let fa = n.add_cell(CellKind::Fa, &[la, j])[0];
        n.add_output("y", fa);
        n
    }

    #[test]
    fn arrival_windows_follow_table2_delays() {
        let n = skewed_netlist();
        let t = TimingAnalysis::analyze(&n, &TimingOptions::default());
        // LA = 7.2, JTL = 4.6, FA = 9.5 (abutted library).
        let y = n.outputs()[0].net;
        let (lo, hi) = t.arrival(y).unwrap();
        assert!((hi - (7.2 + 9.5)).abs() < 1e-9, "hi = {hi}");
        assert!((lo - (4.6 + 9.5)).abs() < 1e-9, "lo = {lo}");
        assert!((t.critical_path_ps - 16.7).abs() < 1e-9);
        // The FA join sees 7.2 vs 4.6 → 2.6 ps skew, inside one JTL.
        assert_eq!(t.joins.len(), 2); // LA itself joins a/b at zero skew
        assert!((t.worst_skew_ps - 2.6).abs() < 1e-9);
        assert!(t.worst_slack_ps >= 0.0);
    }

    #[test]
    fn skew_beyond_tolerance_goes_negative() {
        let n = skewed_netlist();
        let opts = TimingOptions {
            balance: BalanceMode::Off,
            tolerance_ps: Some(1.0),
        };
        let t = TimingAnalysis::analyze(&n, &opts);
        assert!((t.worst_slack_ps - (1.0 - 2.6)).abs() < 1e-9);
    }

    #[test]
    fn endpoint_slack_and_per_net_slack_agree() {
        let n = skewed_netlist();
        let t = TimingAnalysis::analyze(&n, &TimingOptions::default());
        let y = n.outputs()[0].net;
        assert_eq!(t.endpoints.len(), 1);
        assert!((t.endpoints[0].slack_ps).abs() < 1e-9);
        assert!(t.slack(y).unwrap().abs() < 1e-9);
    }

    #[test]
    fn droc_rails_launch_asymmetrically() {
        let mut n = Netlist::new("droc", CellLibrary::xsfq_abutted());
        let d = n.add_input("d");
        let q = n.add_cell(CellKind::Droc { preload: false }, &[d]);
        n.add_output("qp", q[0]);
        n.add_output("qn", q[1]);
        let t = TimingAnalysis::analyze(&n, &TimingOptions::default());
        assert!((t.arrival(q[0]).unwrap().1 - 6.7).abs() < 1e-9);
        assert!((t.arrival(q[1]).unwrap().1 - 9.5).abs() < 1e-9);
        // The data input is an endpoint (capture at the rank boundary).
        assert!(t
            .endpoints
            .iter()
            .any(|e| e.kind == EndpointKind::ClockedInput));
    }

    #[test]
    fn combinational_cycle_stays_total() {
        let mut n = Netlist::new("cycle", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let (c1, o1) = n.add_cell_deferred(CellKind::La);
        let (c2, o2) = n.add_cell_deferred(CellKind::La);
        n.connect_input(c1, 0, a);
        n.connect_input(c1, 1, o2[0]);
        n.connect_input(c2, 0, o1[0]);
        n.connect_input(c2, 1, a);
        n.add_output("y", o2[0]);
        let t = TimingAnalysis::analyze(&n, &TimingOptions::default());
        assert!(t.arrival(o1[0]).is_none());
        assert!(t.endpoints.is_empty());
        assert_eq!(t.critical_path_ps, 0.0);
    }

    #[test]
    fn pool_sweep_is_bit_identical() {
        let n = skewed_netlist();
        let opts = TimingOptions::default();
        let seq = TimingAnalysis::analyze(&n, &opts);
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let par = TimingAnalysis::analyze_with_pool(&n, &opts, &pool);
            assert_eq!(seq.arrival_min, par.arrival_min);
            assert_eq!(seq.arrival_max, par.arrival_max);
            assert_eq!(seq.critical_path_ps, par.critical_path_ps);
            assert_eq!(seq.worst_slack_ps, par.worst_slack_ps);
        }
    }
}
