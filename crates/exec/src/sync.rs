//! Synchronization facade: every concurrency primitive the executor touches
//! is imported from here, never from `std` directly.
//!
//! In normal builds (the default) these are pure re-exports of the `std`
//! types — zero cost, zero behavioural difference; the bench guard
//! (`BENCH_10.json`, `flow/guarded_run` pair) and the bit-identical tier-1
//! gates pin that. With `--features model` the same paths resolve to the
//! [`xsfq_model`] instrumented runtime instead, which lets the `model_gate`
//! test suite deterministically enumerate thread interleavings (including
//! store-buffer reorderings of the non-SeqCst operations) around the very
//! code that ships.
//!
//! The rule for executor code: `use crate::sync::…` for atomics, fences,
//! `Mutex`/`Condvar`, `thread` and `Instant`. `Arc` and `Duration` stay on
//! `std` (they carry no scheduling-visible behaviour).

/// Std-backed primitives (normal builds).
#[cfg(not(feature = "model"))]
mod imp {
    /// Atomic types and fences, as used by the deque and the pool.
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicUsize, Ordering};
    }
    pub use std::sync::{Condvar, Mutex, MutexGuard};
    /// Thread spawning for the pool workers.
    pub mod thread {
        pub use std::thread::{Builder, JoinHandle};
    }
    /// Monotonic time for cancellation deadlines.
    pub mod time {
        pub use std::time::Instant;
    }
}

/// Model-runtime primitives (`--features model` builds).
#[cfg(feature = "model")]
mod imp {
    /// Atomic types and fences, as used by the deque and the pool.
    pub mod atomic {
        pub use xsfq_model::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicUsize, Ordering};
    }
    pub use xsfq_model::sync::{Condvar, Mutex, MutexGuard};
    /// Thread spawning for the pool workers.
    pub mod thread {
        pub use xsfq_model::thread::{Builder, JoinHandle};
    }
    /// Logical time (monotonic along a modeled schedule).
    pub mod time {
        pub use xsfq_model::time::Instant;
    }
}

pub use imp::*;
