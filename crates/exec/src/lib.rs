//! # xsfq-exec — vendored work-stealing executor
//!
//! A zero-dependency (std-only) work-stealing runtime for the synthesis
//! passes: [`Deque`] is a fixed-capacity Chase-Lev work-stealing deque and
//! [`ThreadPool`] a persistent pool of parked worker threads driving a
//! deterministic data-parallel map ([`ThreadPool::map_init`]). The container
//! has no crates.io access, so this plays the role rayon-core would
//! otherwise play — scoped down to the one primitive the optimization
//! passes need: *map an index range over immutable shared data, with
//! per-thread mutable scratch, into a result slot per index*.
//!
//! # Why the commit phase stays single-threaded
//!
//! The resynthesis passes ([`rewrite`](../xsfq_aig/opt/fn.rewrite.html) and
//! friends) split every pass into an **evaluate** phase — per-node cut
//! functions, MFFC sizes and synthesis costs, all pure functions of the
//! *input* graph — and a **commit** phase that builds replacements into the
//! *output* graph. Only the evaluate phase runs on this executor: commit
//! order determines node ids, structural-hash sharing and therefore the
//! result graph, so commits are merged single-threaded in ascending node
//! index. Because evaluation results are pure (scheduling cannot change
//! them), the final graph is **bit-identical** for every thread count; the
//! `parallel_identity` proptest in `xsfq-aig` pins this in CI.
//!
//! # Deque invariants (Chase-Lev)
//!
//! * Tasks are plain `usize` indices into the caller's item slice.
//! * Exactly one owner thread calls [`Deque::push`] / [`Deque::pop`]
//!   (bottom end, LIFO); any number of threads call [`Deque::steal`]
//!   (top end, FIFO). Ownership is by convention — the pool gives each
//!   participant its own deque.
//! * Capacity is fixed at construction and must cover every task pushed;
//!   [`ThreadPool::map_init`] pre-distributes all indices before the
//!   parallel section starts, so the buffer never needs to grow and
//!   `Empty` is a *stable* answer once all pushes have happened-before the
//!   steal (a `Retry` only signals a lost CAS race, not emptiness).
//!
//! # Memory-ordering contract (Lê et al., PPoPP'13)
//!
//! The orderings are exactly those of Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models*, with the
//! array accesses expressed as `Relaxed` atomic slot accesses (the paper's
//! C11 formulation). Which barrier pairs with which access, and what each
//! pair rules out:
//!
//! * **`push` release fence → `steal` acquire `bottom` load.** `push`
//!   writes the slot (`Relaxed`), issues `fence(Release)`, then publishes
//!   `bottom` (`Relaxed`). A stealer's `Acquire` load of `bottom` that
//!   observes the new value therefore also observes the slot contents —
//!   without the fence the bottom store may overtake the slot store
//!   (store→store reordering) and a thief reads a stale task (the *lost /
//!   garbage task* bug; model-gate mutation `DequePushFenceRemoved`).
//! * **`pop` SeqCst fence ↔ `steal` SeqCst fence.** `pop` decrements
//!   `bottom` (`Relaxed`), then `fence(SeqCst)`, then reads `top`; `steal`
//!   reads `top` (`Acquire`), then `fence(SeqCst)`, then reads `bottom`.
//!   The two fences order the owner's bottom-decrement against the thief's
//!   bottom-read in a single total order: either the thief sees the
//!   decrement (and backs off the contended slot) or the owner sees the
//!   thief's `top` advance. Weakening the `pop` fence lets the decrement
//!   sit in the owner's store buffer while a thief still sees the old
//!   `bottom` — both sides take the same last task (the *double take* bug;
//!   mutation `DequePopFenceWeakened`).
//! * **`top` CAS (`SeqCst`) in `pop`/`steal`.** The single arbitration
//!   point for the last-task race: at most one CAS on a given `t` value
//!   succeeds, so every task is handed out exactly once. `pop` only needs
//!   the CAS when `t == b` (one task left); skipping it is the logic
//!   mutation `DequeLastItemCasRemoved`.
//! * **`steal`'s `Acquire` load of `top`** pairs with the previous
//!   winner's `SeqCst` CAS, so a stealer that observes `top = t` also
//!   observes everything published before task `t-1` was taken (slot
//!   recycling after wrap-around stays safe within the capacity bound).
//!
//! The contract is enforced three ways: the `model_gate` suite explores
//! these races exhaustively under the [`mod@sync`] facade's `model`
//! runtime (each bullet's mutation must make the suite fail), Miri runs
//! the unit tests for UB, and `tools/check_ordering.sh` audits that every
//! non-SeqCst atomic op carries an `// Ordering:` justification.

#![warn(missing_docs)]

pub mod sync;

use crate::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use crate::sync::thread::{Builder as ThreadBuilder, JoinHandle};
use crate::sync::time::Instant;
use crate::sync::{Condvar, Mutex};
use std::any::Any;
use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// Why a [`CancelToken`] reports itself cancelled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The token's deadline passed.
    Deadline,
}

/// A cooperative cancellation token: a shared atomic flag plus an optional
/// per-handle deadline.
///
/// Cloning shares the flag — cancelling any clone cancels them all — while
/// [`CancelToken::with_deadline`] / [`CancelToken::with_timeout`] derive a
/// handle that *additionally* expires at an instant of its own (the flow's
/// job runner derives one per job from the batch-wide token). Checking is
/// cheap (one atomic load, plus one monotonic-clock read when a deadline is
/// set), so long-running work can poll at every natural boundary: the pass
/// engine checks between passes and between evaluate batches, which bounds
/// cancellation latency to one batch of work.
///
/// A token that is never cancelled and has no deadline never reports
/// cancelled; [`CancelToken::default`] is exactly that, so APIs can thread a
/// token unconditionally.
pub type CancelToken = CancelTokenImpl<0>;

/// The implementation behind [`CancelToken`], parameterized by a seeded
/// mutation selector for the model-checker gates (`MUT == 0`, the only
/// variant the alias exposes, is the correct code; the branches on other
/// values are const-folded away in normal builds). See [`mutants`].
#[derive(Clone, Debug, Default)]
pub struct CancelTokenImpl<const MUT: u8> {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl<const MUT: u8> CancelTokenImpl<MUT> {
    /// Fresh token: not cancelled, no deadline.
    pub fn new() -> CancelTokenImpl<MUT> {
        CancelTokenImpl::default()
    }

    /// This handle, expiring at `deadline` (the shared flag is unchanged —
    /// other clones do not inherit the deadline).
    #[must_use]
    pub fn with_deadline(&self, deadline: Instant) -> CancelTokenImpl<MUT> {
        CancelTokenImpl {
            flag: Arc::clone(&self.flag),
            deadline: Some(match self.deadline {
                Some(own) => own.min(deadline),
                None => deadline,
            }),
        }
    }

    /// This handle, expiring `timeout` from now.
    #[must_use]
    pub fn with_timeout(&self, timeout: Duration) -> CancelTokenImpl<MUT> {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Request cancellation on every clone of this token.
    pub fn cancel(&self) {
        // Ordering: Release pairs with the Acquire load in is_cancelled /
        // cause, so everything the canceller wrote before cancelling (e.g.
        // the reason for the cancellation) is visible to work that observes
        // the flag and stops. Mutation 1 drops the edge for the model gate.
        let ord = if MUT == 1 {
            Ordering::Relaxed
        } else {
            Ordering::Release
        };
        self.flag.store(true, ord);
    }

    /// Whether work observing this token should stop (explicitly cancelled
    /// or past the deadline).
    pub fn is_cancelled(&self) -> bool {
        // Ordering: Acquire pairs with the Release store in cancel — an
        // observer that reads true also sees the canceller's prior writes.
        let ord = if MUT == 1 {
            Ordering::Relaxed
        } else {
            Ordering::Acquire
        };
        self.flag.load(ord) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Why the token is cancelled, or `None` when it is not. An explicit
    /// [`CancelToken::cancel`] wins over a passed deadline.
    pub fn cause(&self) -> Option<CancelCause> {
        // Ordering: Acquire — same edge as is_cancelled.
        if self.flag.load(Ordering::Acquire) {
            Some(CancelCause::Explicit)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(CancelCause::Deadline)
        } else {
            None
        }
    }

    /// The handle's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

// ---------------------------------------------------------------------------
// Worker panic payloads
// ---------------------------------------------------------------------------

/// The panic payload of the **first** worker thread that panicked inside a
/// parallel section, re-raised by the dispatching thread.
///
/// The original payload is preserved (downcast [`WorkerPanic::payload`] to
/// recover it); [`WorkerPanic::message`] extracts the conventional
/// `&str`/`String` panic text for error reports. The job-runner layers
/// above catch this to attribute a fault to a design and pass instead of a
/// bare "a worker thread panicked".
pub struct WorkerPanic {
    /// Participant index (1-based: participant 0 is the dispatcher, whose
    /// panics propagate unwrapped) of the first worker that panicked.
    pub worker: usize,
    /// The worker's original panic payload.
    pub payload: Box<dyn Any + Send>,
}

impl WorkerPanic {
    /// The human-readable panic message, when the payload is the
    /// conventional `&str` or `String` (as produced by `panic!`).
    pub fn message(&self) -> &str {
        panic_message(self.payload.as_ref())
    }
}

impl fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.message())
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker thread {} panicked: {}",
            self.worker,
            self.message()
        )
    }
}

// A caught `WorkerPanic` is routinely boxed into `dyn Error` chains by the
// layers that catch it (job runners, the serving daemon).
impl std::error::Error for WorkerPanic {}

/// Extract the conventional panic text from a payload: the `&'static str`
/// of `panic!("...")`, the `String` of `panic!("{x}")`, the message of a
/// re-raised [`WorkerPanic`], or a placeholder for custom payloads.
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if let Some(w) = payload.downcast_ref::<WorkerPanic>() {
        w.message()
    } else {
        "<non-string panic payload>"
    }
}

/// Result of a [`Deque::steal`] attempt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race against the owner or another stealer; try again.
    Retry,
    /// Stole the given task.
    Success(usize),
}

/// A fixed-capacity Chase-Lev work-stealing deque over `usize` tasks.
///
/// See the module docs for the ownership and capacity invariants, and the
/// *Memory-ordering contract* section for why each barrier is where it is.
pub type Deque = DequeImpl<0>;

/// The implementation behind [`Deque`], parameterized by a seeded mutation
/// selector for the model-checker gates. `MUT == 0` — the only variant the
/// [`Deque`] alias exposes — is the correct Lê et al. code; the non-zero
/// branches reintroduce one classic bug each (see [`mutants`]) and are
/// const-folded away in normal builds.
///
/// Task slots are `Relaxed` atomics (the paper's C11 array formulation):
/// a slot written by `push` races benignly with stale reads in `steal`,
/// whose CAS discards the value unless the slot was legitimately claimed.
pub struct DequeImpl<const MUT: u8> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl<const MUT: u8> DequeImpl<MUT> {
    /// Deque able to hold `cap` outstanding tasks (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(cap: usize) -> DequeImpl<MUT> {
        let cap = cap.max(2).next_power_of_two();
        DequeImpl {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Push a task on the bottom end. Owner thread only.
    ///
    /// # Panics
    ///
    /// Panics if the deque is full (the fixed capacity must be sized to the
    /// total task count — see the module docs).
    pub fn push(&self, task: usize) {
        // Ordering: Relaxed — only the owner writes bottom, so it reads
        // its own latest value; no other thread's writes are involved.
        let b = self.bottom.load(Ordering::Relaxed);
        // Ordering: Acquire pairs with the stealers' SeqCst CAS on top;
        // observing top = t here means slot t-1's consumption is complete,
        // so reusing its slot (wrap-around) cannot tear a stealer's read.
        let t = self.top.load(Ordering::Acquire);
        assert!(
            (b - t) as usize <= self.mask,
            "deque overflow: capacity must cover all outstanding tasks"
        );
        // Ordering: Relaxed slot store — publication is the release fence
        // below, not the slot access itself (Lê et al.'s C11 array write).
        self.buf[b as usize & self.mask].store(task, Ordering::Relaxed);
        if MUT != 2 {
            // Publish the slot before the new bottom becomes visible to
            // stealers (pairs with steal's Acquire load of bottom).
            // Mutation 2 removes the fence: bottom may overtake the slot
            // write and a thief steals a stale task.
            fence(Ordering::Release);
        }
        // Ordering: Relaxed — the release fence above already orders the
        // slot contents before this store for any thread that reads it.
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pop a task from the bottom end (most recently pushed). Owner only.
    pub fn pop(&self) -> Option<usize> {
        // Ordering: Relaxed load + Relaxed store — owner-only access to
        // bottom; cross-thread visibility is the SeqCst fence's job.
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Ordering: the store of `bottom` must be visible before `top` is
        // read, or a concurrent stealer and this pop could both take the
        // last task. Pairs with the SeqCst fence in steal. Mutation 1
        // weakens it to a release fence, which does not stop the bottom
        // store from sitting in the owner's store buffer past the top read.
        if MUT == 1 {
            fence(Ordering::Release);
        } else {
            fence(Ordering::SeqCst);
        }
        // Ordering: Relaxed — ordered against the stealers by the fence
        // just above; an Acquire here would add nothing the fence pairing
        // does not already give.
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            // Ordering: Relaxed slot load — the owner wrote this slot
            // itself (t <= b proves it is below every stealable index
            // consumed so far), so no synchronization is needed to read it.
            let task = self.buf[b as usize & self.mask].load(Ordering::Relaxed);
            if t == b && MUT != 3 {
                // Single task left: race the stealers for it. The CAS is
                // SeqCst like the stealers' so exactly one side wins.
                // Ordering: Relaxed on failure — losing means a stealer
                // took the task; nothing is read that needs its edge.
                // Mutation 3 skips the arbitration and keeps the task
                // unconditionally — the double-take logic bug.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // Ordering: Relaxed — owner-only bottom reset (the next
                // push/pop re-reads it on this thread).
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(task)
            } else {
                Some(task)
            }
        } else {
            // Ordering: Relaxed — owner-only bottom reset, as above.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Try to steal a task from the top end (least recently pushed).
    pub fn steal(&self) -> Steal {
        // Ordering: Acquire pairs with the previous winner's SeqCst CAS on
        // top: observing top = t also observes that task t-1 was fully
        // taken before this steal attempt starts.
        let t = self.top.load(Ordering::Acquire);
        // Pairs with the SeqCst fence in pop: either this thread sees the
        // owner's bottom decrement, or the owner sees this thread's top
        // CAS — never neither.
        fence(Ordering::SeqCst);
        // Ordering: Acquire pairs with push's release fence — a bottom
        // value covering slot t guarantees the slot's task is visible.
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // Ordering: Relaxed slot load — may race with a later push
            // recycling the slot, but the CAS below discards the value
            // unless this thread legitimately claimed index t.
            let task = self.buf[t as usize & self.mask].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            Steal::Success(task)
        } else {
            Steal::Empty
        }
    }
}

/// Seeded-mutation variants of the lock-free types, compiled only for the
/// model-checker gates. Each alias weakens exactly one ordering (or removes
/// one arbitration step) from the shipped code path; the `model_gate` suite
/// proves the checker catches every one of them, which is what licenses the
/// green run on the unmutated types.
#[cfg(feature = "model")]
#[doc(hidden)]
pub mod mutants {
    /// `pop`'s SeqCst fence weakened to Release: double-take of the last
    /// task (owner's bottom decrement hides in its store buffer).
    pub type DequePopFenceWeakened = super::DequeImpl<1>;
    /// `push`'s Release fence removed: a thief can observe the new bottom
    /// before the slot write (steals a stale/garbage task).
    pub type DequePushFenceRemoved = super::DequeImpl<2>;
    /// `pop`'s last-item CAS removed: owner and thief both take the final
    /// task even under sequential consistency.
    pub type DequeLastItemCasRemoved = super::DequeImpl<3>;
    /// `CancelToken` flag accesses demoted to Relaxed: cancellation no
    /// longer publishes the canceller's prior writes.
    pub type CancelTokenRelaxed = super::CancelTokenImpl<1>;
}

/// Below this many items [`ThreadPool::map_init`] runs inline on the calling
/// thread: waking the pool costs more than the work. Results are identical
/// either way (evaluation is scheduling-independent by construction).
pub const SEQUENTIAL_CUTOFF: usize = 64;

type Job = *const (dyn Fn(usize) + Sync);

/// Raw job pointer made sendable; validity is guaranteed by the dispatch
/// protocol (the dispatcher blocks until every worker finished the job).
struct SendJob(Job);
// SAFETY: the pointee is `Sync` (the `Job` type requires it) and the
// dispatch protocol keeps it alive across the send — the dispatcher does
// not return from `run` until every worker has finished calling it.
unsafe impl Send for SendJob {}

struct JobSlot {
    epoch: u64,
    job: Option<SendJob>,
    running: usize,
    /// First worker panic of the current section: `(worker id, payload)`.
    /// Only the first is kept — it is the one the dispatcher re-raises.
    panic: Option<(usize, Box<dyn Any + Send>)>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    work: Condvar,
    done: Condvar,
}

/// Persistent work-stealing thread pool.
///
/// `ThreadPool::new(n)` spawns `n - 1` parked workers; the calling thread is
/// always participant 0 of a parallel section, so `n == 1` means fully
/// sequential (no threads are spawned at all). One pool may be shared by
/// many callers — parallel sections are serialized through an internal lock,
/// never nested.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes whole parallel sections (the pool runs one job at a time).
    run_lock: Mutex<()>,
    /// Participant cap installed by [`ThreadPool::scoped_budget`];
    /// `usize::MAX` means "no cap".
    budget: AtomicUsize,
}

/// RAII guard of a [`ThreadPool::scoped_budget`] call: restores the pool's
/// previous participant budget when dropped.
pub struct BudgetScope<'p> {
    pool: &'p ThreadPool,
    prev: usize,
}

impl Drop for BudgetScope<'_> {
    fn drop(&mut self) {
        // Ordering: Relaxed — the budget is advisory configuration read by
        // the same thread that dispatches sections (concurrent installs
        // are documented as unsupported); no data is published through it.
        self.pool.budget.store(self.prev, Ordering::Relaxed);
    }
}

impl ThreadPool {
    /// Pool with `threads` participants (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                running: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads.max(1))
            .map(|wid| {
                let shared = Arc::clone(&shared);
                ThreadBuilder::new()
                    .name(format!("xsfq-exec-{wid}"))
                    .spawn(move || worker_loop(&shared, wid))
                    .expect("spawn executor worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            run_lock: Mutex::new(()),
            budget: AtomicUsize::new(usize::MAX),
        }
    }

    /// Cap the number of participants of the parallel sections dispatched
    /// while the returned guard lives (the cap is `min(n, num_threads)`,
    /// with `n` clamped to at least 1). Dropping the guard restores the
    /// previous budget.
    ///
    /// A budget of **1** takes the zero-overhead sequential path: no
    /// workers are woken, the section runs inline on the calling thread —
    /// identical to a 1-thread pool. Budgets above 1 still wake the whole
    /// pool, but only the first `n` participants receive work; results are
    /// bit-identical for every budget (the determinism contract of
    /// [`ThreadPool::map_init`] is scheduling-independent).
    ///
    /// The budget is a property of the pool handle, intended for pools
    /// owned by a single job runner (the serving daemon caps each job's
    /// worker count this way so one giant design cannot monopolize the
    /// machine). Sharing one pool between threads that install different
    /// budgets concurrently is unsupported — last writer wins.
    pub fn scoped_budget(&self, n: usize) -> BudgetScope<'_> {
        // Ordering: Relaxed — see BudgetScope::drop: advisory config, read
        // by the dispatching thread itself, publishes no data.
        let prev = self.budget.swap(n.max(1), Ordering::Relaxed);
        BudgetScope { pool: self, prev }
    }

    /// Participants the next parallel section will actually use: the pool
    /// size clamped by the current [`ThreadPool::scoped_budget`].
    pub fn effective_threads(&self) -> usize {
        // Ordering: Relaxed — see BudgetScope::drop: advisory config only.
        self.num_threads().min(self.budget.load(Ordering::Relaxed))
    }

    /// The process-wide pool: sized by the `XSFQ_THREADS` environment
    /// variable when it holds a positive integer, otherwise by
    /// [`std::thread::available_parallelism`] (so `0`, empty or malformed
    /// values keep the hardware default rather than silently serializing).
    pub fn global() -> &'static ThreadPool {
        static POOL: OnceLock<ThreadPool> = OnceLock::new();
        POOL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// Number of participants (workers + the calling thread).
    pub fn num_threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Deterministic parallel map with per-thread state.
    ///
    /// Computes `f(&mut state, i, &items[i])` for every index and returns
    /// the results in item order. Each participating thread builds its own
    /// `state` with `init` once per call; `f` must derive its result from
    /// `(i, items[i])` alone (state may cache/memoize but not change
    /// results), which makes the output independent of scheduling and
    /// thread count — the property the `optimize` determinism gate pins.
    ///
    /// Work distribution: indices are pre-pushed in contiguous blocks onto
    /// one Chase-Lev deque per participant; each participant drains its own
    /// deque bottom-up (ascending index order) and steals from the top of
    /// the others when empty.
    pub fn map_init<I, T, S>(
        &self,
        items: &[I],
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &I) -> T + Sync,
    ) -> Vec<T>
    where
        I: Sync,
        T: Send,
        S: Send,
    {
        let mut states: Vec<S> = (0..self.num_threads()).map(|_| init()).collect();
        self.map_reuse(items, &mut states, f)
    }

    /// [`ThreadPool::map_init`] with caller-owned per-thread states.
    ///
    /// Participant `wid` works on `states[wid]` exclusively; the slice must
    /// hold at least [`ThreadPool::num_threads`] entries. Callers that map
    /// many batches reuse one state vector so per-thread arenas and memo
    /// tables stay warm across batches — the resynthesis passes' evaluate
    /// phase does exactly this. As with `map_init`, `f` must derive its
    /// result from `(i, items[i])` alone; state may only cache.
    ///
    /// If `f` panics, the panic propagates after all workers stop, and
    /// results computed so far are **leaked** (not dropped): slots are
    /// written in steal order, so which are initialized is unknowable
    /// without extra bookkeeping, and leaking is the safe failure mode.
    pub fn map_reuse<I, T, S>(
        &self,
        items: &[I],
        states: &mut [S],
        f: impl Fn(&mut S, usize, &I) -> T + Sync,
    ) -> Vec<T>
    where
        I: Sync,
        T: Send,
        S: Send,
    {
        self.map_reuse_cutoff(items, states, SEQUENTIAL_CUTOFF, f)
    }

    /// [`ThreadPool::map_init`] for **coarse-grained** items: parallelizes
    /// from two items up instead of applying [`SEQUENTIAL_CUTOFF`].
    ///
    /// The cutoff exists because dispatching the pool costs more than a
    /// fine-grained item (a node evaluation); when each item is itself a
    /// whole synthesis run — the flow's `run_many` scheduling entire
    /// designs — the dispatch cost is noise and a handful of items should
    /// still fan out.
    ///
    /// The nesting rule is unchanged: `f` must not run a parallel section
    /// on the *same* pool (use a private 1-thread pool for inner work).
    pub fn map_init_coarse<I, T, S>(
        &self,
        items: &[I],
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &I) -> T + Sync,
    ) -> Vec<T>
    where
        I: Sync,
        T: Send,
        S: Send,
    {
        let mut states: Vec<S> = (0..self.num_threads()).map(|_| init()).collect();
        self.map_reuse_cutoff(items, &mut states, 2, f)
    }

    /// Shared body of [`ThreadPool::map_reuse`] / [`ThreadPool::map_init_coarse`]:
    /// inputs shorter than `cutoff` run inline on the calling thread.
    fn map_reuse_cutoff<I, T, S>(
        &self,
        items: &[I],
        states: &mut [S],
        cutoff: usize,
        f: impl Fn(&mut S, usize, &I) -> T + Sync,
    ) -> Vec<T>
    where
        I: Sync,
        T: Send,
        S: Send,
    {
        let n = items.len();
        // The scoped budget caps how many participants receive deques; the
        // surplus workers still wake but return immediately from `body`.
        let threads = self.effective_threads();
        assert!(
            states.len() >= threads,
            "need one state per participant ({} < {threads})",
            states.len()
        );
        if threads == 1 || n < cutoff {
            let state = &mut states[0];
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(state, i, item))
                .collect();
        }

        // One deque per participant, blocks of consecutive indices, pushed
        // in reverse so the owner pops them in ascending order.
        let chunk = n.div_ceil(threads);
        let deques: Vec<Deque> = (0..threads)
            .map(|p| {
                let lo = (p * chunk).min(n);
                let hi = ((p + 1) * chunk).min(n);
                let d = Deque::with_capacity(chunk);
                for i in (lo..hi).rev() {
                    d.push(i);
                }
                d
            })
            .collect();

        let mut results: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit contents are allowed to be uninitialized; the
        // vector never drops T (only the transmuted result does, once every
        // slot has been written exactly once).
        unsafe { results.set_len(n) };
        let out = SendPtr(results.as_mut_ptr() as *mut T);
        let states_ptr = SendPtr(states.as_mut_ptr());

        let body = move |wid: usize| {
            if wid >= threads {
                // Participant beyond the scoped budget: no deque, no work.
                return;
            }
            // SAFETY: participant indices are distinct, so each `&mut S`
            // aliases nothing (bounds asserted above).
            let state = unsafe { &mut *states_ptr.slot(wid) };
            let mine = &deques[wid];
            loop {
                let task = mine.pop().or_else(|| {
                    // All pushes happened before dispatch, so Empty is
                    // stable; only Retry (a lost CAS) warrants another lap.
                    loop {
                        let mut saw_retry = false;
                        for off in 1..threads {
                            match deques[(wid + off) % threads].steal() {
                                Steal::Success(t) => return Some(t),
                                Steal::Retry => saw_retry = true,
                                Steal::Empty => {}
                            }
                        }
                        if !saw_retry {
                            return None;
                        }
                        std::hint::spin_loop();
                    }
                });
                let Some(i) = task else { break };
                let value = f(state, i, &items[i]);
                // SAFETY: the deque protocol hands index `i` to exactly one
                // thread, so this slot is written exactly once.
                unsafe { out.slot(i).write(value) };
            }
        };
        self.run(&body);

        // SAFETY: every index was executed (each deque was drained), so all
        // `n` slots are initialized; MaybeUninit<T> and T share layout.
        let mut results = ManuallyDrop::new(results);
        unsafe { Vec::from_raw_parts(results.as_mut_ptr() as *mut T, n, results.capacity()) }
    }

    /// Run `body(participant_index)` on every participant and wait for all
    /// of them. Parallel sections are serialized; nesting (calling back into
    /// the same pool from inside `body`) would deadlock and is forbidden.
    fn run(&self, body: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            body(0);
            return;
        }
        // A panicking section poisons the lock while unwinding; that is
        // benign here (the section waited for every worker before
        // unwinding), so recover instead of propagating the poison.
        let _section = self
            .run_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let mut slot = self.shared.slot.lock().expect("job slot poisoned");
            // SAFETY: `body` outlives the job because this function blocks
            // below until `running` returns to zero.
            let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
            slot.job = Some(SendJob(body_static));
            slot.epoch += 1;
            slot.running = self.handles.len();
            self.shared.work.notify_all();
        }
        // The dispatcher is participant 0.
        let main_result = panic::catch_unwind(AssertUnwindSafe(|| body(0)));
        let worker_panic = {
            let mut slot = self.shared.slot.lock().expect("job slot poisoned");
            while slot.running > 0 {
                slot = self.shared.done.wait(slot).expect("job slot poisoned");
            }
            slot.job = None;
            slot.panic.take()
        };
        if let Err(payload) = main_result {
            panic::resume_unwind(payload);
        }
        if let Some((worker, payload)) = worker_panic {
            // Re-raise the first worker's original payload, wrapped so the
            // catcher learns which worker it was (and the message survives
            // for error reports) instead of a generic pool panic.
            panic::panic_any(WorkerPanic { worker, payload });
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("job slot poisoned");
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.num_threads())
            .finish()
    }
}

struct SendPtr<T>(*mut T);
// SAFETY: a raw pointer is Send/Sync-neutral by itself; every dereference
// site (`slot` callers) separately proves disjoint access — each index is
// written by exactly one thread — so sharing the pointer value is sound
// for `T: Send`.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — the pointer value is shared, disjointness of the
// actual accesses is proven at each dereference site.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to slot `i`. A method (rather than direct field access) so
    /// closures capture the whole `SendPtr` — the `Sync` carrier — instead
    /// of the raw `*mut T` field, which is not `Sync`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation `self.0` points into, and
    /// the caller must uphold the aliasing rules for whatever it does with
    /// the returned pointer.
    #[inline]
    unsafe fn slot(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("job slot poisoned");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    break slot.job.as_ref().expect("job published with epoch").0;
                }
                slot = shared.work.wait(slot).expect("job slot poisoned");
            }
        };
        // SAFETY: the dispatcher keeps `job` alive until `running` drops to
        // zero, which only happens after this call returns.
        let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(wid) }));
        let mut slot = shared.slot.lock().expect("job slot poisoned");
        if let Err(payload) = result {
            // First worker wins: later panics of the same section are
            // usually knock-on effects of the same fault.
            if slot.panic.is_none() {
                slot.panic = Some((wid, payload));
            }
        }
        slot.running -= 1;
        if slot.running == 0 {
            shared.done.notify_all();
        }
    }
}

fn default_threads() -> usize {
    let hardware = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("XSFQ_THREADS") {
        // `0` means "no override"; a malformed value must not silently
        // collapse the pool to one thread, so it also falls through to the
        // hardware default.
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hardware(),
        },
        Err(_) => hardware(),
    }
}

// The unit tests exercise the std-backed build; under the model feature the
// primitives only work inside xsfq_model::check (see tests/model_gate.rs).
#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    #[test]
    fn deque_lifo_pop_fifo_steal() {
        let d = Deque::with_capacity(8);
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Success(0));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn deque_concurrent_steal_takes_each_task_once() {
        let d = Arc::new(Deque::with_capacity(1 << 12));
        let n = 4000usize;
        for i in 0..n {
            d.push(i);
        }
        let mut stolen: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..3 {
                let d = Arc::clone(&d);
                joins.push(s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match d.steal() {
                            Steal::Success(t) => got.push(t),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => break,
                        }
                    }
                    got
                }));
            }
            let mut own = Vec::new();
            while let Some(t) = d.pop() {
                own.push(t);
            }
            stolen.push(own);
            for j in joins {
                stolen.push(j.join().unwrap());
            }
        });
        let mut all: Vec<usize> = stolen.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "each task exactly once");
    }

    #[test]
    fn map_init_matches_sequential_map() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let got = pool.map_init(
            &items,
            || 0u64,
            |acc, _, &x| {
                *acc += x; // per-thread state must not affect results
                x * x + 1
            },
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn map_init_is_identical_across_pool_sizes() {
        let items: Vec<u32> = (0..500).rev().collect();
        let run = |threads| {
            ThreadPool::new(threads).map_init(&items, Vec::<u32>::new, |scratch, i, &x| {
                scratch.push(x);
                (i as u32).wrapping_mul(x).rotate_left(x % 31)
            })
        };
        let base = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), base, "threads = {threads}");
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(3);
        for round in 0..10u64 {
            let items: Vec<u64> = (0..200 + round).collect();
            let got = pool.map_init(&items, || (), |_, _, &x| x + round);
            assert!(got.iter().zip(&items).all(|(g, &x)| *g == x + round));
        }
    }

    #[test]
    fn map_init_coarse_parallelizes_small_inputs() {
        let pool = ThreadPool::new(4);
        // Below SEQUENTIAL_CUTOFF, yet items must still be distributed:
        // record which participant handled each item via the state.
        let items: Vec<usize> = (0..8).collect();
        let got = pool.map_init_coarse(&items, || (), |_, _, &x| x * 3);
        assert_eq!(got, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
        // Identical results for every pool size (the determinism contract).
        let seq = ThreadPool::new(1).map_init_coarse(&items, || (), |_, _, &x| x * 3);
        assert_eq!(got, seq);
    }

    #[test]
    fn small_inputs_run_inline() {
        let pool = ThreadPool::new(4);
        let items = [1usize, 2, 3];
        assert_eq!(
            pool.map_init(&items, || (), |_, _, &x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn scoped_budget_caps_participants_and_restores() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.effective_threads(), 4);
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF * 4).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 7).collect();
        {
            let _cap = pool.scoped_budget(2);
            assert_eq!(pool.effective_threads(), 2);
            assert_eq!(pool.map_init(&items, || (), |_, _, &x| x * 7), expect);
        }
        assert_eq!(pool.effective_threads(), 4, "drop must restore");
        // Budgets only clamp downward; a huge budget is the pool size.
        let _cap = pool.scoped_budget(64);
        assert_eq!(pool.effective_threads(), 4);
        assert_eq!(pool.map_init(&items, || (), |_, _, &x| x * 7), expect);
    }

    #[test]
    fn one_thread_budget_takes_the_sequential_path() {
        let pool = ThreadPool::new(4);
        let _cap = pool.scoped_budget(1);
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF * 4).collect();
        let caller = std::thread::current().id();
        // The sequential path runs inline on the calling thread in
        // ascending index order — observable, unlike "no overhead".
        let seen = std::sync::Mutex::new(Vec::new());
        let got = pool.map_init(
            &items,
            || (),
            |_, i, &x| {
                assert_eq!(std::thread::current().id(), caller);
                seen.lock().unwrap().push(i);
                x + 1
            },
        );
        assert_eq!(got, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_payload_and_id_are_preserved() {
        // Pin the panic to a stealable index and keep participant 0 busy so
        // a *worker* (wid >= 1) hits it; the dispatcher must then re-raise
        // a WorkerPanic carrying the original message and the worker id.
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF * 8).collect();
        let n = items.len();
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_init(
                &items,
                || (),
                |_, wid_probe, &x| {
                    // Index 0 belongs to participant 0's deque; stall it so
                    // the tail indices (other deques) run on real workers.
                    if x == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    if x == n - 1 {
                        panic!("intentional payload {}", 41 + 1);
                    }
                    let _ = wid_probe;
                },
            )
        }));
        let payload = boom.expect_err("section must panic");
        match payload.downcast::<WorkerPanic>() {
            Ok(wp) => {
                assert_eq!(wp.message(), "intentional payload 42");
                assert!(
                    (1..4).contains(&wp.worker),
                    "panic must be attributed to a worker, got {}",
                    wp.worker
                );
                assert!(wp.to_string().contains("intentional payload 42"));
            }
            Err(other) => {
                // The dispatcher itself stole the poisoned index before any
                // worker got there: the original payload propagates raw.
                assert_eq!(panic_message(other.as_ref()), "intentional payload 42");
            }
        }
        // The pool stays usable either way.
        let ok = pool.map_init(&items, || (), |_, _, &x| x + 1);
        assert_eq!(ok[0], 1);
    }

    #[test]
    fn cancel_token_flag_is_shared_and_deadline_is_per_handle() {
        let base = CancelToken::new();
        assert!(!base.is_cancelled());
        assert_eq!(base.cause(), None);

        let expired = base.with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled(), "past deadline must read cancelled");
        assert_eq!(expired.cause(), Some(CancelCause::Deadline));
        assert!(!base.is_cancelled(), "deadline must not leak to the base");

        let far = base.with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        // Deriving a deadline keeps the earlier of the two.
        let near = expired.with_timeout(Duration::from_secs(3600));
        assert!(near.is_cancelled(), "deadlines only tighten");

        base.cancel();
        assert!(base.is_cancelled());
        assert!(far.is_cancelled(), "cancel reaches every clone");
        assert_eq!(far.cause(), Some(CancelCause::Explicit));
        assert_eq!(
            expired.cause(),
            Some(CancelCause::Explicit),
            "explicit cancel wins over a passed deadline"
        );
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let items: Vec<usize> = (0..SEQUENTIAL_CUTOFF * 4).collect();
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_init(
                &items,
                || (),
                |_, _, &x| {
                    assert!(x != 100, "intentional test panic");
                    x
                },
            )
        }));
        assert!(boom.is_err());
        // The pool must stay usable after a panicked section.
        let ok = pool.map_init(&items, || (), |_, _, &x| x + 1);
        assert_eq!(ok[0], 1);
    }
}
