//! Model-checker gates for the executor's lock-free core.
//!
//! Only meaningful with `--features model`, which swaps the crate's `sync`
//! facade to the `xsfq_model` instrumented runtime; run as
//!
//! ```text
//! cargo test -p xsfq-exec --features model --test model_gate
//! ```
//!
//! Every scenario comes in a pair:
//!
//! - the **correct** type (`Deque`, `CancelToken`) must survive *every*
//!   schedule within the preemption bound, including store-buffer
//!   reorderings of its relaxed operations; and
//! - a **seeded mutation** (`mutants::*`, one weakened fence or ordering
//!   each) must be *caught* — the explorer must find a schedule where the
//!   classic bug the barrier prevents actually fires.
//!
//! The second half is what makes the first half trustworthy: a gate that
//! cannot detect the bug when it is planted proves nothing by passing.
//! Bounds are fixed (deterministic schedule enumeration, no timing
//! dependence), so these tests cannot flake.

#![cfg(feature = "model")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use xsfq_exec::sync::thread;
use xsfq_exec::{mutants, CancelToken, CancelTokenImpl, DequeImpl, Steal};
use xsfq_model::Explorer;

// The `mutants` aliases resolve to exactly the const parameters the
// scenarios below instantiate; drift would silently gate the wrong
// mutation, so pin the mapping at compile time.
const _: fn(mutants::DequePopFenceWeakened) -> DequeImpl<1> = |m| m;
const _: fn(mutants::DequePushFenceRemoved) -> DequeImpl<2> = |m| m;
const _: fn(mutants::DequeLastItemCasRemoved) -> DequeImpl<3> = |m| m;
const _: fn(mutants::CancelTokenRelaxed) -> CancelTokenImpl<1> = |m| m;

/// Assert that the explorer finds a bug in `f` within `preemptions`.
fn expect_caught(name: &str, preemptions: usize, f: impl Fn() + Send + Sync + 'static) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Explorer::new().preemptions(preemptions).check(f);
    }));
    assert!(
        result.is_err(),
        "seeded mutation `{name}` was NOT caught: the model gate cannot \
         detect the bug class it claims to guard against"
    );
}

// ---------------------------------------------------------------------------
// Deque: pop vs. steal on the same tasks (double-take / ABA on top)
// ---------------------------------------------------------------------------

/// Owner pushes two tasks and pops once while a thief steals up to three
/// times. Checks the exactly-once contract: no task is consumed twice and
/// nothing that was never pushed (e.g. the slots' initial `0`) is consumed.
///
/// The dangerous interleaving: the owner's `pop` decrements `bottom`, and a
/// concurrent thief must *see* that decrement before concluding `top <
/// bottom`. The SeqCst fence in `pop` publishes it; `DequePopFenceWeakened`
/// downgrades the fence to Release, the decrement lingers in the owner's
/// store buffer, and the thief steals the task the owner already took.
fn pop_vs_steal<const MUT: u8>() {
    let deque = Arc::new(DequeImpl::<MUT>::with_capacity(4));
    deque.push(10);
    deque.push(20);
    let stealer = Arc::clone(&deque);
    let thief = thread::Builder::new()
        .spawn(move || {
            let mut got = Vec::new();
            for _ in 0..3 {
                if let Steal::Success(task) = stealer.steal() {
                    got.push(task);
                }
            }
            got
        })
        .unwrap();
    let mut taken = Vec::new();
    if let Some(task) = deque.pop() {
        taken.push(task);
    }
    taken.extend(thief.join().unwrap());
    taken.sort_unstable();
    assert!(
        taken == [10] || taken == [20] || taken == [10, 20],
        "exactly-once violated: consumed {taken:?} from pushes [10, 20]"
    );
}

#[test]
fn deque_pop_vs_steal_is_exactly_once() {
    let report = Explorer::new().preemptions(2).check(pop_vs_steal::<0>);
    assert!(report.complete, "exploration did not exhaust the tree");
    assert!(report.iterations > 1, "no interleavings were explored");
}

#[test]
fn mutation_pop_fence_weakened_is_caught() {
    // mutants::DequePopFenceWeakened == DequeImpl<1>
    expect_caught("DequePopFenceWeakened", 2, pop_vs_steal::<1>);
}

// ---------------------------------------------------------------------------
// Deque: push vs. steal (lost / garbage task)
// ---------------------------------------------------------------------------

/// Owner publishes one task while a thief races to steal it. Exactly one
/// side must get task 7 — and nobody may observe a garbage task.
///
/// The dangerous interleaving: `push` writes the slot, then `bottom`. If
/// the Release fence between them is removed (`DequePushFenceRemoved`),
/// the `bottom` store can drain from the owner's store buffer first and
/// the thief steals the slot's stale contents (`0` here).
fn push_vs_steal<const MUT: u8>() {
    let deque = Arc::new(DequeImpl::<MUT>::with_capacity(2));
    let stealer = Arc::clone(&deque);
    let thief = thread::Builder::new()
        .spawn(move || {
            for _ in 0..2 {
                if let Steal::Success(task) = stealer.steal() {
                    return Some(task);
                }
            }
            None
        })
        .unwrap();
    deque.push(7);
    let popped = deque.pop();
    let stolen = thief.join().unwrap();
    match (popped, stolen) {
        (Some(7), None) | (None, Some(7)) => {}
        other => panic!("task 7 consumed wrongly: (popped, stolen) = {other:?}"),
    }
}

#[test]
fn deque_push_vs_steal_publishes_the_task() {
    let report = Explorer::new().preemptions(2).check(push_vs_steal::<0>);
    assert!(report.complete, "exploration did not exhaust the tree");
}

#[test]
fn mutation_push_fence_removed_is_caught() {
    // mutants::DequePushFenceRemoved == DequeImpl<2>
    expect_caught("DequePushFenceRemoved", 2, push_vs_steal::<2>);
}

// ---------------------------------------------------------------------------
// Deque: last-item arbitration (pop's CAS on top)
// ---------------------------------------------------------------------------

/// One task, owner pop racing a thief steal: the CAS on `top` in `pop`'s
/// `t == b` branch is the arbitration that lets exactly one side win.
/// `DequeLastItemCasRemoved` skips it, so both sides take the task.
fn last_item_race<const MUT: u8>() {
    let deque = Arc::new(DequeImpl::<MUT>::with_capacity(2));
    deque.push(5);
    let stealer = Arc::clone(&deque);
    let thief = thread::Builder::new()
        .spawn(move || {
            for _ in 0..2 {
                if let Steal::Success(task) = stealer.steal() {
                    return Some(task);
                }
            }
            None
        })
        .unwrap();
    let popped = deque.pop();
    let stolen = thief.join().unwrap();
    assert!(
        !(popped.is_some() && stolen.is_some()),
        "last task taken twice: popped {popped:?}, stolen {stolen:?}"
    );
    assert!(
        popped == Some(5) || stolen == Some(5),
        "last task lost: popped {popped:?}, stolen {stolen:?}"
    );
}

#[test]
fn deque_last_item_goes_to_exactly_one_side() {
    let report = Explorer::new().preemptions(2).check(last_item_race::<0>);
    assert!(report.complete, "exploration did not exhaust the tree");
}

#[test]
fn mutation_last_item_cas_removed_is_caught() {
    // mutants::DequeLastItemCasRemoved == DequeImpl<3>
    expect_caught("DequeLastItemCasRemoved", 2, last_item_race::<3>);
}

// ---------------------------------------------------------------------------
// CancelToken: the Release/Acquire visibility edge
// ---------------------------------------------------------------------------

/// The canceller writes a reason into plain (non-atomic) memory before
/// calling `cancel()`; an observer that sees `is_cancelled()` must see the
/// reason. With the real token the Release store / Acquire load pair
/// orders the accesses; `CancelTokenRelaxed` drops the edge and the reads
/// race the write.
fn cancel_publishes_reason<const MUT: u8>() {
    let reason = Arc::new(xsfq_model::cell::UnsafeCell::new(0usize));
    let token = CancelTokenImpl::<MUT>::new();
    let (reason_w, token_w) = (Arc::clone(&reason), token.clone());
    let canceller = thread::Builder::new()
        .spawn(move || {
            // SAFETY: the pointer is valid for the closure's duration and
            // the model runtime's race detector checks the access itself.
            reason_w.with_mut(|p| unsafe { *p = 42 });
            token_w.cancel();
        })
        .unwrap();
    if token.is_cancelled() {
        // SAFETY: as above — validity is local, ordering is the runtime's
        // to verify (that verification is the point of this gate).
        let seen = reason.with(|p| unsafe { *p });
        assert_eq!(seen, 42, "observed cancellation without its cause");
    }
    canceller.join().unwrap();
}

#[test]
fn cancel_token_publishes_prior_writes() {
    let report = Explorer::new()
        .preemptions(2)
        .check(cancel_publishes_reason::<0>);
    assert!(report.complete, "exploration did not exhaust the tree");
}

#[test]
fn mutation_cancel_token_relaxed_is_caught() {
    // mutants::CancelTokenRelaxed == CancelTokenImpl<1>
    expect_caught("CancelTokenRelaxed", 2, cancel_publishes_reason::<1>);
}

/// Cross-clone propagation: cancelling one clone is visible on the other,
/// and `cause()` agrees with `is_cancelled()` in every interleaving.
#[test]
fn cancel_token_clones_share_the_flag() {
    let report = Explorer::new().preemptions(2).check(|| {
        let token = CancelToken::new();
        let remote = token.clone();
        let canceller = thread::Builder::new()
            .spawn(move || remote.cancel())
            .unwrap();
        if token.is_cancelled() {
            assert_eq!(
                token.cause(),
                Some(xsfq_exec::CancelCause::Explicit),
                "is_cancelled() true but cause() disagrees"
            );
        }
        canceller.join().unwrap();
        assert!(token.is_cancelled(), "cancel lost after join");
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

// ---------------------------------------------------------------------------
// ThreadPool: budget scoping, panic propagation, dispatch correctness
// ---------------------------------------------------------------------------

/// Nested `scoped_budget` guards restore the previous budget in every
/// schedule, and a budget of 1 really forces inline execution.
#[test]
fn scoped_budget_saves_and_restores() {
    let report = Explorer::new().preemptions(1).check(|| {
        let pool = xsfq_exec::ThreadPool::new(2);
        assert_eq!(pool.effective_threads(), 2);
        {
            let _outer = pool.scoped_budget(1);
            assert_eq!(pool.effective_threads(), 1);
            {
                let _inner = pool.scoped_budget(2);
                assert_eq!(pool.effective_threads(), 2);
            }
            assert_eq!(pool.effective_threads(), 1);
            // Budget 1: runs inline on this thread, no dispatch.
            let out = pool.map_init_coarse(&[1usize, 2, 3], || (), |_, _, &x| x * 10);
            assert_eq!(out, vec![10, 20, 30]);
        }
        assert_eq!(pool.effective_threads(), 2);
    });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// Every item is mapped exactly once with the right value, whichever
/// participant (dispatcher or worker) ends up running it.
#[test]
fn pool_map_each_item_exactly_once() {
    let report = Explorer::new()
        .preemptions(1)
        .max_iterations(2_000_000)
        .check(|| {
            let pool = xsfq_exec::ThreadPool::new(2);
            let out = pool.map_init_coarse(&[3usize, 1, 4], || (), |_, _, &x| x + 100);
            assert_eq!(out, vec![103, 101, 104]);
        });
    assert!(report.complete, "exploration did not exhaust the tree");
}

/// A panic inside a parallel section surfaces on the dispatching thread in
/// every schedule — either raw (the dispatcher ran the item itself) or
/// wrapped in `WorkerPanic` with the payload preserved.
#[test]
fn pool_panic_propagates_in_every_schedule() {
    let report = Explorer::new()
        .preemptions(1)
        .max_iterations(2_000_000)
        .check(|| {
            let pool = xsfq_exec::ThreadPool::new(2);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.map_init_coarse(
                    &[0usize, 1],
                    || (),
                    |_, _, &x| {
                        if x == 1 {
                            panic!("intentional model-gate panic");
                        }
                        x
                    },
                )
            }));
            let payload = result.expect_err("panic in parallel section was swallowed");
            assert_eq!(
                xsfq_exec::panic_message(payload.as_ref()),
                "intentional model-gate panic",
                "panic payload not preserved across the pool"
            );
        });
    assert!(report.complete, "exploration did not exhaust the tree");
}
