//! Cell characterization: extract propagation delays from junction phase
//! rise times, the way §2.3 does with HSPICE (delays land in 1×1 Liberty
//! LUTs; see `xsfq_cells::liberty`).

use crate::cells::{self, CellFixture};
use crate::transient::{transient, TransientOptions};

/// Standard input kick used for characterization.
const KICK: f64 = 500e-6;
const KICK_W: f64 = 2.0;

/// Characterized delay of one cell (ps).
#[derive(Clone, Debug)]
pub struct CellDelay {
    /// Cell name.
    pub name: &'static str,
    /// Input-to-output propagation delay (ps).
    pub delay_ps: f64,
}

/// Measure the input→output delay of a fixture by injecting one pulse per
/// input and timing the output junction's 2π slip relative to the *last*
/// injection (matching how clock-to-Q / propagation delays are read off
/// JJ phase plots).
pub fn measure_delay(fixture: &CellFixture, input_times_ps: &[f64], t_end_ps: f64) -> Option<f64> {
    let mut fx = fixture.clone();
    for (node, &t) in fixture.inputs.iter().zip(input_times_ps) {
        fx.circuit.pulse(*node, t, KICK, KICK_W);
    }
    let wf = transient(
        &fx.circuit,
        &TransientOptions {
            t_end_ps,
            ..Default::default()
        },
    );
    let pulses = wf.pulse_times(&fx.circuit, fx.output_junctions[0]);
    let last_input = input_times_ps
        .iter()
        .take(fixture.inputs.len())
        .cloned()
        .fold(0.0f64, f64::max);
    pulses.first().map(|&t| t - last_input - KICK_W / 2.0)
}

/// Characterize the cells the analog substrate models. Delays are in the
/// single-digit-ps range of the paper's Table 2; the published values
/// remain the source of truth for the evaluation tables (see DESIGN.md).
pub fn characterize_library() -> Vec<CellDelay> {
    let mut out = Vec::new();
    let jtl = cells::jtl_chain(1);
    if let Some(d) = measure_delay(&jtl, &[10.0], 80.0) {
        out.push(CellDelay {
            name: "JTL",
            delay_ps: d,
        });
    }
    let split = cells::splitter();
    if let Some(d) = measure_delay(&split, &[10.0], 80.0) {
        out.push(CellDelay {
            name: "SPLIT",
            delay_ps: d,
        });
    }
    let la = cells::la_cell();
    if let Some(d) = measure_delay(&la, &[10.0, 30.0], 120.0) {
        out.push(CellDelay {
            name: "LA",
            delay_ps: d,
        });
    }
    let fa = cells::fa_cell();
    if let Some(d) = measure_delay(&fa, &[10.0], 80.0) {
        out.push(CellDelay {
            name: "FA",
            delay_ps: d,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_produces_ps_scale_delays() {
        let lib = characterize_library();
        assert!(lib.iter().any(|c| c.name == "JTL"));
        for cell in &lib {
            assert!(
                cell.delay_ps > 0.0 && cell.delay_ps < 40.0,
                "{} delay {:.2} ps out of range",
                cell.name,
                cell.delay_ps
            );
        }
    }
}
