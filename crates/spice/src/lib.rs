//! # xsfq-spice — analog Josephson-junction circuit simulation
//!
//! The workspace's substitute for HSPICE + the MIT-LL SFQ5ee junction
//! models (paper §2.3): an RCSJ transient solver over node phases, cell
//! schematics for the xSFQ primitives, and the delay-characterization flow
//! that feeds the Liberty library.
//!
//! ```
//! use xsfq_spice::{cells, transient::{transient, TransientOptions}};
//!
//! // One SFQ pulse rides down a 4-stage JTL (Figure 2-style experiment).
//! let mut fx = cells::jtl_chain(4);
//! fx.circuit.pulse(fx.inputs[0], 10.0, 500e-6, 2.0);
//! let wf = transient(&fx.circuit, &TransientOptions::default());
//! assert_eq!(wf.pulse_count(&fx.circuit, fx.output_junctions[0]), 1);
//! ```

#![warn(missing_docs)]

pub mod cells;
pub mod characterize;
pub mod circuit;
pub mod transient;

pub use circuit::{Circuit, Node, Waveform, K_PHI, PHI0};
pub use transient::{transient, TransientOptions, Waveforms};
