//! Transient analysis of RCSJ circuits.
//!
//! State variables are node phases and phase rates; each step solves the
//! (small, dense) capacitance system `M·φ̈ = I_net(φ, φ̇, t)` and advances
//! with classic RK4. Every node carries a small parasitic capacitance so
//! the system stays well-posed even for junction-free nodes.

use crate::circuit::{Circuit, Node, K_PHI};

/// Result of a transient run: phase trajectories per node, sampled every
/// `sample_every` steps.
#[derive(Clone, Debug)]
pub struct Waveforms {
    /// Sample times (ps).
    pub time_ps: Vec<f64>,
    /// Node phases (rad), indexed `[node][sample]`.
    pub phase: Vec<Vec<f64>>,
    /// Node voltages (V), from `V = Φ0/2π · φ̇`, indexed `[node][sample]`.
    pub voltage: Vec<Vec<f64>>,
}

impl Waveforms {
    /// Phase across a junction (a minus b) at every sample.
    pub fn junction_phase(&self, circuit: &Circuit, junction: usize) -> Vec<f64> {
        let j = circuit.junctions()[junction];
        self.phase[j.a.index()]
            .iter()
            .zip(&self.phase[j.b.index()])
            .map(|(pa, pb)| pa - pb)
            .collect()
    }

    /// Times (ps) at which a junction slips by 2π — i.e. emits an SFQ
    /// pulse. Detected as crossings of odd multiples of π.
    pub fn pulse_times(&self, circuit: &Circuit, junction: usize) -> Vec<f64> {
        let phases = self.junction_phase(circuit, junction);
        let mut out = Vec::new();
        let mut next_threshold = std::f64::consts::PI;
        for (i, &p) in phases.iter().enumerate() {
            while p > next_threshold {
                out.push(self.time_ps[i]);
                next_threshold += 2.0 * std::f64::consts::PI;
            }
        }
        out
    }

    /// Total 2π slips of a junction over the run.
    pub fn pulse_count(&self, circuit: &Circuit, junction: usize) -> usize {
        self.pulse_times(circuit, junction).len()
    }
}

/// Transient simulation options.
#[derive(Copy, Clone, Debug)]
pub struct TransientOptions {
    /// Time step (ps). SFQ pulses are ~2 ps wide; 0.02 ps resolves them.
    pub dt_ps: f64,
    /// End time (ps).
    pub t_end_ps: f64,
    /// Keep every n-th sample.
    pub sample_every: usize,
    /// Parasitic capacitance per node (F).
    pub parasitic_c: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            dt_ps: 0.02,
            t_end_ps: 200.0,
            sample_every: 10,
            parasitic_c: 1e-15,
        }
    }
}

/// Run a transient analysis.
///
/// # Panics
///
/// Panics if the circuit has no nodes beyond ground.
pub fn transient(circuit: &Circuit, options: &TransientOptions) -> Waveforms {
    let n = circuit.num_nodes();
    assert!(n > 1, "empty circuit");
    let free = n - 1; // ground is fixed at phase 0
    let dt = options.dt_ps * 1e-12;

    // Capacitance matrix (free nodes only), constant over the run.
    let mut m = vec![0.0f64; free * free];
    for i in 0..free {
        m[i * free + i] += options.parasitic_c * K_PHI;
    }
    for j in circuit.junctions() {
        let (a, b) = (j.a.index(), j.b.index());
        let ck = j.c * K_PHI;
        if a > 0 {
            m[(a - 1) * free + (a - 1)] += ck;
        }
        if b > 0 {
            m[(b - 1) * free + (b - 1)] += ck;
        }
        if a > 0 && b > 0 {
            m[(a - 1) * free + (b - 1)] -= ck;
            m[(b - 1) * free + (a - 1)] -= ck;
        }
    }
    let m_factored = lu_factor(m, free);

    let mut phase = vec![0.0f64; n];
    let mut rate = vec![0.0f64; n];
    let mut wf = Waveforms {
        time_ps: Vec::new(),
        phase: vec![Vec::new(); n],
        voltage: vec![Vec::new(); n],
    };

    let accel = |phase: &[f64], rate: &[f64], t: f64, out: &mut Vec<f64>| {
        // Net current into each free node (excluding capacitive terms).
        let mut i_net = vec![0.0f64; free];
        let mut add = |node: Node, amps: f64| {
            if node.index() > 0 {
                i_net[node.index() - 1] += amps;
            }
        };
        for j in circuit.junctions() {
            let dphi = phase[j.a.index()] - phase[j.b.index()];
            let drate = rate[j.a.index()] - rate[j.b.index()];
            let i = j.ic * dphi.sin() + K_PHI * drate / j.r;
            add(j.a, -i);
            add(j.b, i);
        }
        for l in circuit.inductors() {
            let dphi = phase[l.a.index()] - phase[l.b.index()];
            let i = K_PHI * dphi / l.l;
            add(l.a, -i);
            add(l.b, i);
        }
        for r in circuit.resistors() {
            let drate = rate[r.a.index()] - rate[r.b.index()];
            let i = K_PHI * drate / r.r;
            add(r.a, -i);
            add(r.b, i);
        }
        for s in circuit.sources() {
            add(s.node, s.wave.at(t));
        }
        lu_solve(&m_factored, free, &i_net, out);
    };

    let steps = (options.t_end_ps / options.dt_ps).ceil() as usize;
    let mut a1 = vec![0.0; free];
    let mut a2 = vec![0.0; free];
    let mut a3 = vec![0.0; free];
    let mut a4 = vec![0.0; free];
    let mut tmp_phase = vec![0.0f64; n];
    let mut tmp_rate = vec![0.0f64; n];
    for step in 0..=steps {
        let t = step as f64 * dt;
        if step % options.sample_every == 0 {
            wf.time_ps.push(t * 1e12);
            for i in 0..n {
                wf.phase[i].push(phase[i]);
                wf.voltage[i].push(K_PHI * rate[i]);
            }
        }
        // RK4 on (phase, rate).
        accel(&phase, &rate, t, &mut a1);
        for i in 1..n {
            tmp_phase[i] = phase[i] + 0.5 * dt * rate[i];
            tmp_rate[i] = rate[i] + 0.5 * dt * a1[i - 1];
        }
        accel(&tmp_phase, &tmp_rate, t + 0.5 * dt, &mut a2);
        let k2_rate: Vec<f64> = tmp_rate.clone();
        for i in 1..n {
            tmp_phase[i] = phase[i] + 0.5 * dt * k2_rate[i];
            tmp_rate[i] = rate[i] + 0.5 * dt * a2[i - 1];
        }
        accel(&tmp_phase, &tmp_rate, t + 0.5 * dt, &mut a3);
        let k3_rate: Vec<f64> = tmp_rate.clone();
        for i in 1..n {
            tmp_phase[i] = phase[i] + dt * k3_rate[i];
            tmp_rate[i] = rate[i] + dt * a3[i - 1];
        }
        accel(&tmp_phase, &tmp_rate, t + dt, &mut a4);
        let k4_rate: Vec<f64> = tmp_rate.clone();
        for i in 1..n {
            let k1p = rate[i];
            let k2p = k2_rate[i];
            let k3p = k3_rate[i];
            let k4p = k4_rate[i];
            phase[i] += dt / 6.0 * (k1p + 2.0 * k2p + 2.0 * k3p + k4p);
            rate[i] += dt / 6.0 * (a1[i - 1] + 2.0 * a2[i - 1] + 2.0 * a3[i - 1] + a4[i - 1]);
        }
    }
    wf
}

/// LU factorization with partial pivoting (row-major, in place).
fn lu_factor(mut m: Vec<f64>, n: usize) -> (Vec<f64>, Vec<usize>) {
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot.
        let mut best = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[best * n + col].abs() {
                best = row;
            }
        }
        if best != col {
            perm.swap(col, best);
            for k in 0..n {
                m.swap(col * n + k, best * n + k);
            }
        }
        let pivot = m[col * n + col];
        // Entries are C·Φ0/2π ≈ 1e-31-scale for parasitic-only nodes.
        assert!(pivot.abs() > 1e-45, "singular capacitance matrix");
        for row in col + 1..n {
            let f = m[row * n + col] / pivot;
            m[row * n + col] = f;
            for k in col + 1..n {
                m[row * n + k] -= f * m[col * n + k];
            }
        }
    }
    (m, perm)
}

fn lu_solve(factored: &(Vec<f64>, Vec<usize>), n: usize, b: &[f64], out: &mut Vec<f64>) {
    let (m, perm) = factored;
    out.clear();
    out.extend(perm.iter().map(|&p| b[p]));
    // Forward substitution.
    for row in 1..n {
        for col in 0..row {
            let f = m[row * n + col];
            let prev = out[col];
            out[row] -= f * prev;
        }
    }
    // Back substitution.
    for row in (0..n).rev() {
        for col in row + 1..n {
            let x = out[col];
            out[row] -= m[row * n + col] * x;
        }
        out[row] /= m[row * n + row];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// A single biased junction kicked by a pulse slips by exactly 2π.
    #[test]
    fn single_junction_emits_one_fluxon() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let j = c.junction(n1, Node::GROUND, 100e-6, 6.0, 0.2e-12);
        c.bias(n1, 70e-6); // 0.7 Ic
        c.pulse(n1, 20.0, 120e-6, 3.0);
        let wf = transient(&c, &TransientOptions::default());
        assert_eq!(wf.pulse_count(&c, j), 1, "one kick, one fluxon");
        // Phase settles near 2π + asin(0.7).
        let final_phase = *wf.junction_phase(&c, j).last().unwrap();
        let expect = 2.0 * std::f64::consts::PI + 0.7f64.asin();
        assert!(
            (final_phase - expect).abs() < 0.5,
            "settles at {final_phase:.2}, expected ≈{expect:.2}"
        );
    }

    /// Without a kick, a sub-critical bias never makes the junction slip.
    #[test]
    fn subcritical_bias_is_quiet() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let j = c.junction(n1, Node::GROUND, 100e-6, 6.0, 0.2e-12);
        c.bias(n1, 70e-6);
        let wf = transient(&c, &TransientOptions::default());
        assert_eq!(wf.pulse_count(&c, j), 0);
    }

    /// An overdriven junction oscillates (many slips) — sanity that the
    /// integrator handles the running state.
    #[test]
    fn overdriven_junction_runs() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let j = c.junction(n1, Node::GROUND, 100e-6, 6.0, 0.2e-12);
        c.bias(n1, 150e-6); // 1.5 Ic
        let wf = transient(&c, &TransientOptions::default());
        assert!(wf.pulse_count(&c, j) > 5, "running junction keeps slipping");
    }

    #[test]
    fn lu_solves_small_systems() {
        let m = vec![4.0, 1.0, 2.0, 3.0];
        let f = lu_factor(m, 2);
        let mut x = Vec::new();
        lu_solve(&f, 2, &[9.0, 13.0], &mut x);
        // 4x + y = 9; 2x + 3y = 13 → x = 1.4, y = 3.4
        assert!((x[0] - 1.4).abs() < 1e-9);
        assert!((x[1] - 3.4).abs() < 1e-9);
    }
}
