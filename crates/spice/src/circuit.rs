//! Circuit description for the RCSJ transient simulator.
//!
//! Components connect nodes; node 0 is ground. Josephson junctions follow
//! the resistively-and-capacitively-shunted-junction model
//! (`I = Ic·sin φ + V/R + C·dV/dt` with `V = Φ0/2π · dφ/dt`), the standard
//! model behind HSPICE superconducting decks (paper §2.3).

/// Magnetic flux quantum (Wb).
pub const PHI0: f64 = 2.067_833_848e-15;

/// `Φ0 / 2π` — the phase-to-voltage scale factor.
pub const K_PHI: f64 = PHI0 / (2.0 * std::f64::consts::PI);

/// A circuit node handle. Node 0 is ground.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Node(pub(crate) usize);

impl Node {
    /// The ground node.
    pub const GROUND: Node = Node(0);

    /// Dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A Josephson junction (RCSJ model).
#[derive(Copy, Clone, Debug)]
pub struct Junction {
    /// Positive terminal.
    pub a: Node,
    /// Negative terminal.
    pub b: Node,
    /// Critical current (A).
    pub ic: f64,
    /// Shunt resistance (Ω).
    pub r: f64,
    /// Junction capacitance (F).
    pub c: f64,
}

/// A (superconducting) inductor.
#[derive(Copy, Clone, Debug)]
pub struct Inductor {
    /// Positive terminal.
    pub a: Node,
    /// Negative terminal.
    pub b: Node,
    /// Inductance (H).
    pub l: f64,
}

/// An ohmic resistor.
#[derive(Copy, Clone, Debug)]
pub struct Resistor {
    /// Positive terminal.
    pub a: Node,
    /// Negative terminal.
    pub b: Node,
    /// Resistance (Ω).
    pub r: f64,
}

/// A current source waveform.
#[derive(Copy, Clone, Debug)]
pub enum Waveform {
    /// Constant bias current (A).
    Dc(f64),
    /// A raised-sine pulse `A·sin²(π(t−t0)/w)` for `t ∈ [t0, t0+w]`,
    /// times in seconds.
    Pulse {
        /// Peak amplitude (A).
        amplitude: f64,
        /// Start time (s).
        t0: f64,
        /// Width (s).
        width: f64,
    },
    /// A DC level switched on at `t0` (models the DC preload line of §2.2).
    Step {
        /// Level after the step (A).
        level: f64,
        /// Switch-on time (s).
        t0: f64,
    },
}

impl Waveform {
    /// Instantaneous current at time `t` (seconds).
    pub fn at(&self, t: f64) -> f64 {
        match *self {
            Waveform::Dc(i) => i,
            Waveform::Pulse {
                amplitude,
                t0,
                width,
            } => {
                if t < t0 || t > t0 + width {
                    0.0
                } else {
                    let x = (t - t0) / width;
                    amplitude * (std::f64::consts::PI * x).sin().powi(2)
                }
            }
            Waveform::Step { level, t0 } => {
                if t >= t0 {
                    level
                } else {
                    0.0
                }
            }
        }
    }
}

/// A current source injecting into a node (returning via ground).
#[derive(Copy, Clone, Debug)]
pub struct CurrentSource {
    /// Injection node.
    pub node: Node,
    /// Waveform.
    pub wave: Waveform,
}

/// A circuit under construction.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    num_nodes: usize,
    junctions: Vec<Junction>,
    inductors: Vec<Inductor>,
    resistors: Vec<Resistor>,
    sources: Vec<CurrentSource>,
}

impl Circuit {
    /// New empty circuit (ground pre-allocated).
    pub fn new() -> Self {
        Circuit {
            num_nodes: 1,
            ..Default::default()
        }
    }

    /// Allocate a fresh node.
    pub fn node(&mut self) -> Node {
        let n = Node(self.num_nodes);
        self.num_nodes += 1;
        n
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Add a junction; returns its index (for phase readout).
    pub fn junction(&mut self, a: Node, b: Node, ic: f64, r: f64, c: f64) -> usize {
        self.junctions.push(Junction { a, b, ic, r, c });
        self.junctions.len() - 1
    }

    /// Add an inductor.
    pub fn inductor(&mut self, a: Node, b: Node, l: f64) {
        self.inductors.push(Inductor { a, b, l });
    }

    /// Add a resistor.
    pub fn resistor(&mut self, a: Node, b: Node, r: f64) {
        self.resistors.push(Resistor { a, b, r });
    }

    /// Add a DC bias current into `node`.
    pub fn bias(&mut self, node: Node, amps: f64) {
        self.sources.push(CurrentSource {
            node,
            wave: Waveform::Dc(amps),
        });
    }

    /// Add an input pulse (typical SFQ kick: ~0.6 mA over ~2 ps).
    pub fn pulse(&mut self, node: Node, t0_ps: f64, amplitude: f64, width_ps: f64) {
        self.sources.push(CurrentSource {
            node,
            wave: Waveform::Pulse {
                amplitude,
                t0: t0_ps * 1e-12,
                width: width_ps * 1e-12,
            },
        });
    }

    /// Add a DC step (preload line).
    pub fn step(&mut self, node: Node, t0_ps: f64, level: f64) {
        self.sources.push(CurrentSource {
            node,
            wave: Waveform::Step {
                level,
                t0: t0_ps * 1e-12,
            },
        });
    }

    /// Junctions (read access for the solver and analyses).
    pub fn junctions(&self) -> &[Junction] {
        &self.junctions
    }

    /// Inductors.
    pub fn inductors(&self) -> &[Inductor] {
        &self.inductors
    }

    /// Resistors.
    pub fn resistors(&self) -> &[Resistor] {
        &self.resistors
    }

    /// Sources.
    pub fn sources(&self) -> &[CurrentSource] {
        &self.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveforms_evaluate() {
        let dc = Waveform::Dc(1e-4);
        assert_eq!(dc.at(0.0), 1e-4);
        let p = Waveform::Pulse {
            amplitude: 1e-3,
            t0: 1e-12,
            width: 2e-12,
        };
        assert_eq!(p.at(0.0), 0.0);
        assert!((p.at(2e-12) - 1e-3).abs() < 1e-12, "peak at midpoint");
        assert_eq!(p.at(4e-12), 0.0);
        let s = Waveform::Step {
            level: 5e-5,
            t0: 1e-12,
        };
        assert_eq!(s.at(0.5e-12), 0.0);
        assert_eq!(s.at(2e-12), 5e-5);
    }

    #[test]
    fn circuit_construction() {
        let mut c = Circuit::new();
        let n1 = c.node();
        let n2 = c.node();
        let j = c.junction(n1, Node::GROUND, 1e-4, 5.0, 1e-13);
        c.inductor(n1, n2, 3e-12);
        c.bias(n1, 7e-5);
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(j, 0);
        assert_eq!(c.junctions().len(), 1);
    }
}
