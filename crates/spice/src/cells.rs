//! Analog cell schematics (MIT-LL SFQ5ee-class parameters: 100 µA-scale
//! junctions, ~3 pH interconnect inductors, 0.7·Ic biasing).
//!
//! These are the circuits behind the paper's Figure 2/3 waveforms and the
//! Table 2 delay characterization. Absolute numbers differ from the
//! fab-calibrated HSPICE models, but pulse propagation, storage and
//! thresholding behave identically; the characterization flow
//! ([`crate::characterize`]) extracts delays the same way (§2.3).

use crate::circuit::{Circuit, Node};

/// Default junction critical current (A).
pub const IC: f64 = 100e-6;
/// Default shunt resistance (Ω), βc ≈ 1 territory.
pub const RSHUNT: f64 = 6.0;
/// Default junction capacitance (F).
pub const CJ: f64 = 0.05e-12;
/// Interconnect inductance (H).
pub const LJTL: f64 = 3e-12;
/// Bias fraction of Ic.
pub const BIAS: f64 = 0.7;

/// A cell instance: the circuit plus labeled observation points.
#[derive(Clone, Debug)]
pub struct CellFixture {
    /// The analog circuit.
    pub circuit: Circuit,
    /// Input nodes (pulse injection points), in port order.
    pub inputs: Vec<Node>,
    /// Junction indices whose 2π slips constitute the cell's output(s).
    pub output_junctions: Vec<usize>,
}

/// An `n`-stage Josephson transmission line. Output is the last junction.
pub fn jtl_chain(stages: usize) -> CellFixture {
    let mut c = Circuit::new();
    let input = c.node();
    let mut prev = input;
    let mut last_jj = 0;
    for _ in 0..stages {
        let n = c.node();
        c.inductor(prev, n, LJTL);
        last_jj = c.junction(n, Node::GROUND, IC, RSHUNT, CJ);
        c.bias(n, BIAS * IC);
        prev = n;
    }
    CellFixture {
        circuit: c,
        inputs: vec![input],
        output_junctions: vec![last_jj],
    }
}

/// 1→2 splitter: an oversized input junction drives two half-sized output
/// branches.
pub fn splitter() -> CellFixture {
    let mut c = Circuit::new();
    let input = c.node();
    let hub = c.node();
    c.inductor(input, hub, LJTL);
    let _j_in = c.junction(hub, Node::GROUND, 1.4 * IC, RSHUNT / 1.4, 1.4 * CJ);
    c.bias(hub, BIAS * 1.4 * IC);
    let mut outs = Vec::new();
    for _ in 0..2 {
        let n = c.node();
        c.inductor(hub, n, LJTL);
        let j = c.junction(n, Node::GROUND, IC, RSHUNT, CJ);
        c.bias(n, BIAS * IC);
        outs.push(j);
    }
    CellFixture {
        circuit: c,
        inputs: vec![input],
        output_junctions: outs,
    }
}

/// DC-to-SFQ converter (§2.2): a one-shot escape pair. The DC step first
/// overdrives the output junction, which slips once; the shed fluxon
/// steers the standing current into the high-Ic escape branch, where it
/// sits below critical forever after. Exactly one pulse per step edge.
pub fn dc_to_sfq() -> CellFixture {
    let mut c = Circuit::new();
    let drive = c.node();
    // Output junction directly on the drive node.
    let j = c.junction(drive, Node::GROUND, IC, RSHUNT, CJ);
    // Escape branch: large loop inductor into an oversized junction that
    // carries the standing DC without flipping.
    let b = c.node();
    c.inductor(drive, b, 20e-12);
    let _j_escape = c.junction(b, Node::GROUND, 2.0 * IC, RSHUNT / 2.0, 2.0 * CJ);
    // The DC line is driven externally with `circuit.step(...)` at `drive`.
    CellFixture {
        circuit: c,
        inputs: vec![drive],
        output_junctions: vec![j],
    }
}

/// Last-Arrival cell (Muller C element, dual-rail AND — paper Figure 2i).
///
/// Two storage loops share an output junction. Each input pulse flips its
/// storage junction, parking one fluxon whose circulating current alone
/// cannot fire the output; the second fluxon pushes it over threshold.
/// The output 2π slip discharges both loops, reinitializing the cell.
/// Four junctions: two storage, one output, one output-side buffer for
/// cascadability (the `I_C` ranking rule of §2.1).
pub fn la_cell() -> CellFixture {
    let mut c = Circuit::new();
    let ic_out = 1.5 * IC;
    let out = c.node();
    let j_out = c.junction(out, Node::GROUND, ic_out, RSHUNT / 1.5, 1.5 * CJ);
    c.bias(out, 0.60 * ic_out);
    let mut inputs = Vec::new();
    for _ in 0..2 {
        let i_node = c.node();
        let s = c.node();
        c.inductor(i_node, s, LJTL);
        let _j_store = c.junction(s, Node::GROUND, IC, RSHUNT, CJ);
        c.bias(s, BIAS * IC);
        // Storage loop: sized so one fluxon contributes ≈ 0.25 · Ic_out.
        c.inductor(s, out, 55e-12);
        inputs.push(i_node);
    }
    // Output buffer junction for cascadability (4th JJ).
    let buf = c.node();
    c.inductor(out, buf, LJTL);
    let j_buf = c.junction(buf, Node::GROUND, IC, RSHUNT, CJ);
    c.bias(buf, BIAS * IC);
    let _ = j_out;
    CellFixture {
        circuit: c,
        inputs,
        output_junctions: vec![j_buf],
    }
}

/// First-Arrival cell (inverse C element, dual-rail OR — paper Figure 2ii).
///
/// The first pulse propagates straight through the merger to the output
/// and simultaneously loads a hold loop whose circulating current lowers
/// the escape junction's threshold; the second pulse is diverted through
/// the escape path (annihilating the held fluxon) and never reaches the
/// output. Four junctions: two input, one escape, one output.
pub fn fa_cell() -> CellFixture {
    let mut c = Circuit::new();
    let hub = c.node();
    let mut inputs = Vec::new();
    let mut input_jjs = Vec::new();
    for _ in 0..2 {
        let i_node = c.node();
        let n = c.node();
        c.inductor(i_node, n, LJTL);
        let j = c.junction(n, Node::GROUND, IC, RSHUNT, CJ);
        c.bias(n, BIAS * IC);
        c.inductor(n, hub, LJTL);
        inputs.push(i_node);
        input_jjs.push(j);
    }
    // Escape junction: swallows the second pulse once the hold loop is
    // charged (its bias is raised by the held circulating current).
    let esc = c.node();
    c.inductor(hub, esc, 18e-12);
    let _j_esc = c.junction(esc, Node::GROUND, 0.8 * IC, RSHUNT / 0.8, 0.8 * CJ);
    // Output junction.
    let out = c.node();
    c.inductor(hub, out, LJTL);
    let j_out = c.junction(out, Node::GROUND, IC, RSHUNT, CJ);
    c.bias(out, BIAS * IC);
    CellFixture {
        circuit: c,
        inputs,
        output_junctions: vec![j_out],
    }
}

/// Destructive read-out (DRO) storage loop with a clock port and a DC
/// preload port — the §2.2 / Figure 3 demonstration vehicle. Input pulses
/// load the loop; a clock pulse reads it out destructively (a pulse
/// emerges iff the loop was loaded). The preload port injects the same
/// loop flux from a DC step, no SFQ routing needed.
pub fn dro_cell() -> CellFixture {
    let mut c = Circuit::new();
    let d = c.node();
    let s = c.node();
    c.inductor(d, s, LJTL);
    let _j_in = c.junction(s, Node::GROUND, IC, RSHUNT, CJ);
    c.bias(s, 0.6 * IC);
    // Storage loop into the readout comparator (30 pH keeps the held
    // fluxon's circulating current below the read junction's headroom).
    let r = c.node();
    c.inductor(s, r, 30e-12);
    let j_read = c.junction(r, Node::GROUND, 1.3 * IC, RSHUNT / 1.3, 1.3 * CJ);
    c.bias(r, 0.55 * 1.3 * IC);
    let clk = c.node();
    c.inductor(clk, r, LJTL);
    // Preload: DC step into the storage node (discrete DC-to-SFQ stage).
    let preload = c.node();
    c.inductor(preload, s, 20e-12);
    CellFixture {
        circuit: c,
        inputs: vec![d, clk, preload],
        output_junctions: vec![j_read],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{transient, TransientOptions};

    fn opts(t_end: f64) -> TransientOptions {
        TransientOptions {
            t_end_ps: t_end,
            ..Default::default()
        }
    }

    const KICK: f64 = 500e-6;
    /// Clock kicks are gentler: they must tip a loaded comparator without
    /// firing an empty one.
    const CLK_KICK: f64 = 150e-6;
    const KICK_W: f64 = 2.0;

    #[test]
    fn jtl_propagates_single_pulse() {
        let mut fx = jtl_chain(4);
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(100.0));
        assert_eq!(
            wf.pulse_count(&fx.circuit, fx.output_junctions[0]),
            1,
            "one pulse in, one pulse out"
        );
        let t = wf.pulse_times(&fx.circuit, fx.output_junctions[0])[0];
        assert!(t > 10.0 && t < 60.0, "arrives with finite delay, got {t}");
    }

    #[test]
    fn jtl_propagates_pulse_train() {
        let mut fx = jtl_chain(3);
        for k in 0..4 {
            fx.circuit
                .pulse(fx.inputs[0], 20.0 + 40.0 * k as f64, KICK, KICK_W);
        }
        let wf = transient(&fx.circuit, &opts(220.0));
        assert_eq!(wf.pulse_count(&fx.circuit, fx.output_junctions[0]), 4);
    }

    #[test]
    fn splitter_duplicates() {
        let mut fx = splitter();
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(100.0));
        assert_eq!(wf.pulse_count(&fx.circuit, fx.output_junctions[0]), 1);
        assert_eq!(wf.pulse_count(&fx.circuit, fx.output_junctions[1]), 1);
    }

    #[test]
    fn dc_to_sfq_emits_once() {
        let mut fx = dc_to_sfq();
        fx.circuit.step(fx.inputs[0], 25.0, 150e-6);
        let wf = transient(&fx.circuit, &opts(150.0));
        assert_eq!(
            wf.pulse_count(&fx.circuit, fx.output_junctions[0]),
            1,
            "a DC step converts to exactly one fluxon"
        );
    }

    #[test]
    fn la_fires_only_on_last_arrival() {
        // Single input: no output.
        let mut fx = la_cell();
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(120.0));
        assert_eq!(
            wf.pulse_count(&fx.circuit, fx.output_junctions[0]),
            0,
            "LA must hold after one input"
        );
        // Both inputs: one output after the second arrival.
        let mut fx = la_cell();
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        fx.circuit.pulse(fx.inputs[1], 40.0, KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(160.0));
        assert_eq!(
            wf.pulse_count(&fx.circuit, fx.output_junctions[0]),
            1,
            "LA fires once after both inputs"
        );
        let t = wf.pulse_times(&fx.circuit, fx.output_junctions[0])[0];
        assert!(t > 40.0, "fires after the last arrival, got {t}");
    }

    #[test]
    fn fa_fires_on_first_arrival() {
        let mut fx = fa_cell();
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(120.0));
        assert_eq!(
            wf.pulse_count(&fx.circuit, fx.output_junctions[0]),
            1,
            "FA fires on the first input"
        );
        let t = wf.pulse_times(&fx.circuit, fx.output_junctions[0])[0];
        assert!(t > 10.0 && t < 60.0);
    }

    #[test]
    fn dro_reads_out_destructively() {
        // Load then clock → pulse; clock again → nothing.
        let mut fx = dro_cell();
        fx.circuit.pulse(fx.inputs[0], 10.0, KICK, KICK_W);
        fx.circuit.pulse(fx.inputs[1], 60.0, CLK_KICK, KICK_W);
        fx.circuit.pulse(fx.inputs[1], 120.0, CLK_KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(180.0));
        let pulses = wf.pulse_times(&fx.circuit, fx.output_junctions[0]);
        assert_eq!(pulses.len(), 1, "destructive readout: {pulses:?}");
        assert!(pulses[0] > 60.0 && pulses[0] < 120.0);
    }

    #[test]
    fn dro_preloads_from_dc_line_window() {
        // Figure 3: the DC line is energized during initialization (5–45
        // ps window), loading exactly one fluxon; the first clock reads a
        // 1, the second reads a 0.
        let mut fx = dro_cell();
        fx.circuit.pulse(fx.inputs[2], 5.0, 60e-6, 40.0);
        fx.circuit.pulse(fx.inputs[1], 80.0, CLK_KICK, KICK_W);
        fx.circuit.pulse(fx.inputs[1], 140.0, CLK_KICK, KICK_W);
        let wf = transient(&fx.circuit, &opts(200.0));
        let pulses = wf.pulse_times(&fx.circuit, fx.output_junctions[0]);
        assert_eq!(
            pulses.len(),
            1,
            "exactly one readout (the preloaded 1): {pulses:?}"
        );
        assert!(pulses[0] > 80.0 && pulses[0] < 140.0, "on the first clock");
    }
}
