//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality, and plenty for randomized testing and simulation, though
//! (deliberately) not a drop-in for `rand`'s exact value streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, producing values of type `T`
/// (generic over `T` exactly like `rand`'s `SampleRange`, so type inference
/// can flow from the call site's expected type into the range literal).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of any [`Standard`] type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same algorithm as `rand::rngs::StdRng` (ChaCha12); callers in
    /// this workspace only rely on determinism for a fixed seed, not on the
    /// exact stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(4..24u32);
            assert!((4..24).contains(&x));
            let y = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn bool_and_float_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues), "bias: {trues}/1000");
    }
}
