//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `pat in strategy`
//!   and `name: Type` parameter forms,
//! * [`Strategy`] implementations for integer ranges, tuples,
//!   [`prop::collection::vec`] and [`any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics with
//! the deterministic case index so it can be replayed (the generator is
//! seeded from the test name, so failures reproduce run-to-run).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic generator backing every test case (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test's name).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Test-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert*` and propagated out of a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Combinator namespace (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Half-open length bounds for collection strategies (the stand-in
        /// for proptest's `SizeRange`, so bare `4..40` literals work).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            start: usize,
            end: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange {
                    start: r.start,
                    end: r.end,
                }
            }
        }

        impl From<std::ops::Range<i32>> for SizeRange {
            fn from(r: std::ops::Range<i32>) -> Self {
                SizeRange {
                    start: r.start.max(0) as usize,
                    end: r.end.max(0) as usize,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    start: n,
                    end: n + 1,
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `S`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        /// `Vec` of values from `element`, length drawn from `length`.
        pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: length.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = (self.length.start..self.length.end).sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Assert inside a property, reporting failure through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Bind the parameter list of a property, munching `name in strategy` and
/// `name: Type` forms (internal to [`proptest!`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Expand the test items of a [`proptest!`] block (internal).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $crate::__proptest_bind!(rng; $($params)*);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Run each contained `#[test] fn name(params) { .. }` as a property over
/// many random cases. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(
            v in prop::collection::vec((any::<u8>(), 0usize..64), 2..10),
            n in 3usize..7,
            flag: bool,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&(_, x)| x < 64));
            prop_assert!((3..7).contains(&n));
            let _ = flag;
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use crate::TestRng;
}
