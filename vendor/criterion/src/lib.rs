//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the API subset the workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `b.iter(..)`, [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement model: each bench function is warmed up once, the per-call
//! time estimated, and then `sample_size` wall-clock samples are collected
//! (batching fast calls so each sample covers at least ~2 ms). The reported
//! statistic is the **median** nanoseconds per call.
//!
//! Besides the human-readable report on stdout, results are appended as JSON
//! to the path in the `XSFQ_BENCH_JSON` environment variable when set —
//! that is how `cargo run -p xsfq-bench --bin perf_summary` collects the
//! machine-readable `BENCH_*.json` trajectory without parsing text.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median nanoseconds per call.
    pub median_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Top-level benchmark driver (collects results across groups).
#[derive(Default, Debug)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 60,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the report and, when `XSFQ_BENCH_JSON` is set, append the
    /// results to that file as JSON lines `{"group":..,"name":..,"median_ns":..}`.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("XSFQ_BENCH_JSON") {
            if !path.is_empty() {
                let mut text = String::new();
                for r in &self.results {
                    text.push_str(&format!(
                        "{{\"group\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}\n",
                        r.group, r.name, r.median_ns, r.samples
                    ));
                }
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = f.write_all(text.as_bytes());
                }
            }
        }
    }
}

/// A group of related benchmarks sharing a sample-size configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Measure `f` (which receives a [`Bencher`]) under `name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut f = f;
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut bencher);
        println!(
            "bench {:<40} {:>14.1} ns/iter ({} samples)",
            format!("{}/{}", self.name, name),
            bencher.median_ns,
            bencher.samples
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            name,
            median_ns: bencher.median_ns,
            samples: bencher.samples,
        });
        self
    }

    /// Finish the group (kept for API parity; measurement is eager).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
    samples: usize,
}

/// Total wall-clock budget per benchmark (samples are trimmed to stay under
/// it for slow routines).
const PER_BENCH_BUDGET: Duration = Duration::from_secs(20);
/// Minimum wall-clock per sample; fast routines are batched up to this.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

impl Bencher {
    /// Measure the closure. The return value is passed through
    /// [`black_box`] so the computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + per-call estimate.
        let start = Instant::now();
        black_box(f());
        let mut est = start.elapsed();
        if est < Duration::from_nanos(1) {
            est = Duration::from_nanos(1);
        }
        // Batch fast calls so each sample is at least MIN_SAMPLE long.
        let batch = (MIN_SAMPLE.as_nanos() / est.as_nanos()).clamp(1, 1 << 24) as u64;
        // Trim the sample count to the per-bench budget.
        let per_sample = est * batch as u32;
        let affordable = (PER_BENCH_BUDGET.as_nanos() / per_sample.as_nanos().max(1)) as usize;
        let samples = self.sample_size.min(affordable).max(3);

        let mut times_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            times_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
        times_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = times_ns.len() / 2;
        self.median_ns = if times_ns.len() % 2 == 1 {
            times_ns[mid]
        } else {
            (times_ns[mid - 1] + times_ns[mid]) / 2.0
        };
        self.samples = samples;
    }
}

/// Define a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
}

/// Define `main` running the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("spin", |b| {
                b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x * x)))
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.group, "g");
        assert_eq!(r.name, "spin");
        assert!(r.median_ns > 0.0);
    }
}
