//! Sweep the benchmark suites through both flows (clock-free xSFQ vs the
//! path-balanced RSFQ baseline) and print the JJ comparison — a compact
//! version of the paper's Tables 4 and 6.
//!
//! The xSFQ side runs as **one batch**: [`SynthesisFlow::run_many`]
//! schedules whole designs across the executor pool (reports are identical
//! to per-design `run` calls — flow-level parallelism, same results). Pass
//! `--script '<pass script>'` to replace the `standard` preset, e.g.
//! `--script 'fast; f'` (grammar documented in `xsfq::aig::pass`).
//!
//! ```sh
//! cargo run --release --example benchmark_sweep [--script '<script>'] [circuit ...]
//! ```

use xsfq::baselines;
use xsfq::core::SynthesisFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut script = "standard".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--script" {
            script = args.next().ok_or("--script needs a pass script")?;
        } else {
            names.push(arg);
        }
    }
    if names.is_empty() {
        names = [
            "c880",
            "int2float",
            "dec",
            "priority",
            "cavlc",
            "s27",
            "s386",
        ]
        .map(String::from)
        .to_vec();
    }

    let mut designs = Vec::new();
    for name in &names {
        let Some(aig) = xsfq::benchmarks::by_name(name) else {
            eprintln!("unknown benchmark '{name}' — see xsfq_benchmarks::all()");
            continue;
        };
        designs.push(aig);
    }

    // One flow, one batch: designs are scheduled whole across the pool.
    let flow = SynthesisFlow::new().script_str(&script)?;
    let results = flow.run_many(&designs)?;

    println!("script: {}", flow.options().script);
    println!(
        "{:<12} {:>7} {:>9} {:>11} {:>9} {:>9} {:>11}",
        "circuit", "nodes", "xSFQ JJ", "RSFQ JJ(+clk)", "savings", "dupl", "opt (ms)"
    );
    for (aig, r) in designs.iter().zip(&results) {
        let b = baselines::pbmap(aig);
        let rsfq = b.jj_with_clock_tree();
        let opt_ns: u64 = r.report.passes.iter().map(|p| p.wall_ns).sum();
        println!(
            "{:<12} {:>7} {:>9} {:>13} {:>8.1}x {:>8.0}% {:>10.1}",
            r.report.name,
            r.optimized.num_ands(),
            r.report.jj_total,
            rsfq,
            rsfq as f64 / r.report.jj_total as f64,
            r.report.duplication_percent,
            opt_ns as f64 / 1e6,
        );
    }
    Ok(())
}
