//! Sweep the benchmark suites through both flows (clock-free xSFQ vs the
//! path-balanced RSFQ baseline) and print the JJ comparison — a compact
//! version of the paper's Tables 4 and 6.
//!
//! ```sh
//! cargo run --release --example benchmark_sweep [circuit ...]
//! ```

use xsfq::aig::opt::Effort;
use xsfq::baselines;
use xsfq::core::SynthesisFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec![
            "c880".into(),
            "int2float".into(),
            "dec".into(),
            "priority".into(),
            "cavlc".into(),
            "s27".into(),
            "s386".into(),
        ]
    } else {
        args
    };
    println!(
        "{:<12} {:>7} {:>9} {:>11} {:>9} {:>9}",
        "circuit", "nodes", "xSFQ JJ", "RSFQ JJ(+clk)", "savings", "dupl"
    );
    for name in names {
        let Some(aig) = xsfq::benchmarks::by_name(&name) else {
            eprintln!("unknown benchmark '{name}' — see xsfq_benchmarks::all()");
            continue;
        };
        let r = SynthesisFlow::new().effort(Effort::Standard).run(&aig)?;
        let b = baselines::pbmap(&aig);
        let rsfq = b.jj_with_clock_tree();
        println!(
            "{:<12} {:>7} {:>9} {:>13} {:>8.1}x {:>8.0}%",
            name,
            r.optimized.num_ands(),
            r.report.jj_total,
            rsfq,
            rsfq as f64 / r.report.jj_total as f64,
            r.report.duplication_percent,
        );
    }
    Ok(())
}
