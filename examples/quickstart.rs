//! Quickstart: synthesize a small design to clock-free xSFQ cells.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xsfq::aig::{build, Aig, Lit};
use xsfq::core::SynthesisFlow;
use xsfq::netlist::writers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the design as an AIG (the RTL-entry substitute).
    let mut aig = Aig::new("adder4");
    let a = aig.input_word("a", 4);
    let b = aig.input_word("b", 4);
    let (sum, carry) = build::ripple_add(&mut aig, &a, &b, Lit::FALSE);
    aig.output_word("sum", &sum);
    aig.output("carry", carry);
    println!("input design: {aig}");

    // 2. Run the flow: a pass script optimizes the AIG, then polarities are
    //    chosen, the graph is mapped, and splitters inserted. The script is
    //    ABC-style — `"standard"` is the default preset, and any recipe
    //    like `"b; rw; rf; b; rwz; rw"` or `"standard; f"` works.
    //    `verify(true)` adds a SAT proof that the netlist matches.
    let result = SynthesisFlow::new()
        .script_str("standard")?
        .verify(true)
        .run(&aig)?;
    println!("report:       {}", result.report);

    // 3. Per-pass telemetry: every scripted pass reports wall time and
    //    node/depth deltas (the rows behind BENCH_<n>.json).
    println!("passes:");
    for stat in &result.report.passes {
        println!("  {stat}");
    }

    // 4. Inspect the mapped netlist.
    let stats = result.netlist().stats();
    println!(
        "cells: {} LA/FA + {} splitters = {} JJs ({} clocked cells — clock-free!)",
        stats.la_fa, stats.splitters, stats.jj_total, stats.clocked_cells
    );

    // 5. Export structural Verilog.
    let mut verilog = Vec::new();
    writers::write_verilog(result.netlist(), &mut verilog)?;
    println!("\n--- netlist.v (first lines) ---");
    for line in String::from_utf8(verilog)?.lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
