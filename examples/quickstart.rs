//! Quickstart: synthesize a small design to clock-free xSFQ cells.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xsfq::aig::{build, Aig, Lit};
use xsfq::core::SynthesisFlow;
use xsfq::netlist::writers;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the design as an AIG (the RTL-entry substitute).
    let mut aig = Aig::new("adder4");
    let a = aig.input_word("a", 4);
    let b = aig.input_word("b", 4);
    let (sum, carry) = build::ripple_add(&mut aig, &a, &b, Lit::FALSE);
    aig.output_word("sum", &sum);
    aig.output("carry", carry);
    println!("input design: {aig}");

    // 2. Run the flow: optimize → choose polarities → map → splitters.
    //    `verify(true)` adds a SAT proof that the netlist matches.
    let result = SynthesisFlow::new().verify(true).run(&aig)?;
    println!("report:       {}", result.report);

    // 3. Inspect the mapped netlist.
    let stats = result.netlist.stats();
    println!(
        "cells: {} LA/FA + {} splitters = {} JJs ({} clocked cells — clock-free!)",
        stats.la_fa, stats.splitters, stats.jj_total, stats.clocked_cells
    );

    // 4. Export structural Verilog.
    let mut verilog = Vec::new();
    writers::write_verilog(&result.netlist, &mut verilog)?;
    println!("\n--- netlist.v (first lines) ---");
    for line in String::from_utf8(verilog)?.lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
