//! Explore the JJ-vs-frequency trade of xSFQ pipelining on the c6288
//! multiplier (the paper's Table 5 experiment) for any stage count.
//!
//! ```sh
//! cargo run --release --example pipeline_explorer [max_stages]
//! ```

use xsfq::core::SynthesisFlow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let max_stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let aig = xsfq::benchmarks::by_name("c6288").expect("registered benchmark");
    println!(
        "c6288 (16×16 array multiplier), {} AND nodes\n",
        aig.num_ands()
    );
    println!(
        "{:>6} {:>9} {:>8} {:>11} {:>12} {:>14}",
        "stages", "#JJ", "#LA/FA", "#DROC", "depth", "clock (GHz)"
    );
    for stages in 0..=max_stages {
        let r = SynthesisFlow::new().pipeline_stages(stages).run(&aig)?;
        println!(
            "{:>6} {:>9} {:>8} {:>5}/{:<5} {:>6}/{:<5} {:>6.1}/{:<6.1}",
            stages,
            r.report.jj_total,
            r.report.la_fa,
            r.report.drocs_plain,
            r.report.drocs_preload,
            r.report.depth_logic,
            r.report.depth_with_splitters,
            r.report.circuit_ghz,
            r.report.arch_ghz,
        );
    }
    println!("\n(architectural clock = circuit clock / 2: every logical cycle");
    println!(" spans an excite and a relax phase — paper §4.2.2)");
    Ok(())
}
