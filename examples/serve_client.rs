//! Synthesis-as-a-service: talk to an `xsfq-serve` daemon over its
//! length-prefixed TCP protocol.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```
//!
//! With no arguments the example starts an in-process daemon on a loopback
//! port, so it is self-contained; pass an address to point it at a real
//! `xsfq-serve` instance instead:
//!
//! ```sh
//! xsfq-serve --state-dir /tmp/xsfq-state &   # prints "listening on ADDR"
//! cargo run --release --example serve_client -- ADDR
//! ```

use xsfq::aig::io::write_blif;
use xsfq::aig::{build, Aig, Lit};
use xsfq::serve::protocol::{Response, SubmitRequest};
use xsfq::serve::{Client, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A daemon to talk to: the one the user named, or a private
    //    in-process instance (port 0 = kernel-assigned).
    let (server, addr) = match std::env::args().nth(1) {
        Some(addr) => (None, addr),
        None => {
            let state =
                std::env::temp_dir().join(format!("xsfq-serve-example-{}", std::process::id()));
            let server = Server::start(ServeConfig::new(&state))?;
            let addr = server.local_addr().to_string();
            println!("started in-process daemon on {addr}");
            (Some(server), addr)
        }
    };

    // 2. The job payload: any BLIF or AIGER netlist. Here, a 4-bit adder.
    let mut aig = Aig::new("adder4");
    let a = aig.input_word("a", 4);
    let b = aig.input_word("b", 4);
    let (sum, carry) = build::ripple_add(&mut aig, &a, &b, Lit::FALSE);
    aig.output_word("sum", &sum);
    aig.output("carry", carry);
    let mut blif = Vec::new();
    write_blif(&aig, &mut blif)?;

    // 3. Submit it. The connection is strictly request-response; `submit`
    //    blocks until the daemon returns a result, verdict, or BUSY.
    let mut client = Client::connect(&*addr)?;
    let request = SubmitRequest {
        script: "standard".into(),
        name: "adder4".into(),
        data: blif,
        fault: None,
    };
    match client.submit(&request)? {
        Response::Ok {
            cache_hit,
            netlist,
            report,
        } => {
            println!("first run: cache_hit={cache_hit}");
            println!("--- netlist.v (first lines) ---");
            for line in String::from_utf8(netlist)?.lines().take(8) {
                println!("{line}");
            }
            println!("report bytes: {}", report.len());
        }
        Response::Busy { retry_after_ms } => {
            println!("daemon at capacity; retry in {retry_after_ms} ms");
        }
        Response::Err { kind, verdict } => {
            println!("job failed ({kind}): {}", String::from_utf8_lossy(&verdict));
        }
        other => println!("unexpected response: {other:?}"),
    }

    // 4. Resubmit: the canonical-AIG cache recognizes the design and
    //    replays the bit-identical result without rerunning the flow.
    if let Response::Ok { cache_hit, .. } = client.submit(&request)? {
        println!("second run: cache_hit={cache_hit}");
    }

    // 5. Daemon health: a JSON counters frame.
    if let Response::Stats(json) = client.stats()? {
        println!("stats: {}", String::from_utf8(json)?);
    }

    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}
