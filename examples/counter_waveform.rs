//! The paper's Figure 7: a 2-bit xSFQ counter simulated at pulse level,
//! showing the one-shot trigger, the excite/relax clocking, and the
//! decoded count sequence.
//!
//! ```sh
//! cargo run --release --example counter_waveform
//! ```

use xsfq::aig::Aig;
use xsfq::core::{OutputPolarity, SynthesisFlow};
use xsfq::pulse::{wave, Harness, PulseSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2-bit counter: q0 toggles, q1 ^= q0.
    let mut g = Aig::new("cnt2");
    let q0 = g.latch("q0", false);
    let q1 = g.latch("q1", false);
    g.set_latch_next(q0, !q0);
    let n1 = g.xor(q1, q0);
    g.set_latch_next(q1, n1);
    g.output("out0", q0);
    g.output("out1", q1);

    let r = SynthesisFlow::new().run(&g)?;
    println!("{}", r.report);
    println!(
        "flip-flops: {} DROC pairs, trigger-clocked first ranks: {}\n",
        g.num_latches(),
        r.netlist().trigger_clocked().len()
    );

    // Raw pulse view (the Figure 7 rendering).
    let t = r.netlist().stats().critical_delay_ps + 60.0;
    let mut sim = PulseSim::new(r.netlist());
    sim.trigger(0.0);
    for e in 1..=12 {
        sim.clock(e as f64 * t);
    }
    sim.run_until(13.0 * t);
    let tracks = vec![
        wave::Track {
            label: "trg".into(),
            pulses: vec![0.0],
        },
        wave::Track {
            label: "clk".into(),
            pulses: (1..=12).map(|e| e as f64 * t).collect(),
        },
        wave::Track {
            label: "out[0]".into(),
            pulses: sim.pulses(r.netlist().outputs()[0].net).to_vec(),
        },
        wave::Track {
            label: "out[1]".into(),
            pulses: sim.pulses(r.netlist().outputs()[1].net).to_vec(),
        },
    ];
    print!("{}", wave::render(&tracks, 13.0 * t, t / 4.0, t));

    // Decoded logical cycles.
    let negs = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let res = Harness::new(r.netlist(), negs).run(&vec![vec![]; 6]);
    let counts: Vec<u8> = res
        .outputs
        .iter()
        .map(|o| (o[1] as u8) << 1 | o[0] as u8)
        .collect();
    println!("\ndecoded count sequence: {counts:?}");
    println!(
        "protocol violations: {}, reinitialized: {}",
        res.violations, res.reinitialized
    );
    Ok(())
}
