//! The paper's running example (Figures 4–5): one full adder, four mapping
//! strategies, from the 120-JJ direct translation down to 58 JJs —
//! finished with a pulse-level simulation that checks every input pattern.
//!
//! ```sh
//! cargo run --release --example full_adder_walkthrough
//! ```

use xsfq::aig::{build, Aig};
use xsfq::core::{map_xsfq, MapOptions, OutputPolarity, PolarityMode, SynthesisFlow};
use xsfq::pulse::Harness;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fa = Aig::new("full_adder");
    let a = fa.input("a");
    let b = fa.input("b");
    let cin = fa.input("cin");
    let (s, co) = build::full_adder(&mut fa, a, b, cin);
    fa.output("s", s);
    fa.output("cout", co);
    println!(
        "minimal full-adder AIG: {} nodes (paper Figure 4: 7)\n",
        fa.num_ands()
    );

    for (label, mode) in [
        ("dual-rail pairs   (§3.1.3)", PolarityMode::DualRail),
        ("positive outputs  (§3.1.4)", PolarityMode::AllPositive),
        ("phase heuristic   (§3.1.5)", PolarityMode::Heuristic),
    ] {
        let m = map_xsfq(
            &fa,
            &MapOptions {
                polarity: mode,
                ..Default::default()
            },
        );
        let st = m.physical.stats();
        println!(
            "{label}: {:>2} LA/FA, {:>2} splitters, {:>3} JJ",
            st.la_fa, st.splitters, st.jj_total
        );
    }

    // Full flow + alternating-protocol simulation of all 8 patterns.
    let r = SynthesisFlow::new().verify(true).run(&fa)?;
    let negs: Vec<bool> = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let vectors: Vec<Vec<bool>> = (0..8)
        .map(|p| (0..3).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let res = Harness::new(r.netlist(), negs).run(&vectors);
    println!("\npulse-level check (excite/relax protocol):");
    println!(" a b c | s cout");
    for (v, o) in vectors.iter().zip(&res.outputs) {
        println!(
            " {} {} {} | {} {}",
            v[0] as u8, v[1] as u8, v[2] as u8, o[0] as u8, o[1] as u8
        );
    }
    println!(
        "violations: {}, all LA/FA reinitialized: {}",
        res.violations, res.reinitialized
    );
    Ok(())
}
