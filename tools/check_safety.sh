#!/usr/bin/env bash
# Unsafe-code audit gate: every `unsafe` occurrence in first-party crates
# must be justified by a `// SAFETY:` comment (or a `# Safety` doc section
# for `unsafe fn` declarations) on the same line or within the preceding
# few lines. Scans crates/ only — vendored code is out of scope.
#
# Usage: tools/check_safety.sh [repo-root]   (exit 1 on violations)
set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
window=6
fail=0

while IFS= read -r file; do
    violations=$(awk -v window="$window" '
        BEGIN { last_safety = -1000000 }
        {
            line = $0
            sub(/^[ \t]+/, "", line)
            # Comment and doc lines never *are* unsafe code; they may
            # carry the justification.
            is_comment = (line ~ /^\/\//)
            if ($0 ~ /SAFETY:/ || $0 ~ /# Safety/) last_safety = NR
            if (is_comment) next
            if ($0 ~ /(^|[^[:alnum:]_"])unsafe([^[:alnum:]_"]|$)/) {
                if (NR - last_safety > window) {
                    printf "%d: %s\n", NR, $0
                }
            }
        }
    ' "$file")
    if [ -n "$violations" ]; then
        echo "unannotated unsafe in $file:"
        echo "$violations"
        fail=1
    fi
done < <(find "$root/crates" -name '*.rs' -type f | sort)

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: unsafe code without a SAFETY justification (see above)."
    echo "Add a \`// SAFETY: ...\` comment within $window lines before the block."
    exit 1
fi
echo "check_safety: every unsafe occurrence is SAFETY-annotated."
