#!/usr/bin/env bash
# Memory-ordering audit gate: every non-SeqCst atomic ordering literal
# (`Ordering::Relaxed` / `Acquire` / `Release` / `AcqRel`) in first-party
# crates must be justified by a `// Ordering:` comment on the same line or
# within the preceding few lines. SeqCst is the safe default and needs no
# justification; anything weaker is an optimization that must say which
# edge it pairs with (or why no edge is needed). Scans crates/ only —
# vendored code is out of scope.
#
# The scanner negative-tests itself on every run: a built-in fixture with
# one unannotated weak ordering must be flagged, and an annotated one must
# pass, otherwise the gate refuses to report success.
#
# Usage: tools/check_ordering.sh [repo-root]   (exit 1 on violations)
set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
window=8
fail=0

scan() { # scan <file>  -> prints "line: code" per violation
    awk -v window="$window" '
        BEGIN { last_just = -1000000 }
        {
            line = $0
            sub(/^[ \t]+/, "", line)
            # Comment and doc lines never *are* atomic operations; they
            # may carry the justification.
            is_comment = (line ~ /^\/\//)
            if ($0 ~ /\/\/[\/!]? *Ordering:/) last_just = NR
            if (is_comment) next
            if ($0 ~ /Ordering::(Relaxed|Acquire|Release|AcqRel)/) {
                if (NR - last_just > window) {
                    printf "%d: %s\n", NR, $0
                }
            }
        }
    ' "$1"
}

# --- scanner self-test (negative + positive fixture) -----------------------
selftest_dir=$(mktemp -d)
trap 'rm -rf "$selftest_dir"' EXIT
cat > "$selftest_dir/bad.rs" <<'EOF'
fn bump(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
EOF
cat > "$selftest_dir/good.rs" <<'EOF'
fn bump(c: &AtomicUsize) {
    // Ordering: Relaxed — counter only, publishes no data.
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::SeqCst);
}
EOF
if [ -z "$(scan "$selftest_dir/bad.rs")" ]; then
    echo "check_ordering: SELF-TEST FAILED — unannotated weak ordering not flagged" >&2
    exit 2
fi
if [ -n "$(scan "$selftest_dir/good.rs")" ]; then
    echo "check_ordering: SELF-TEST FAILED — annotated ordering wrongly flagged" >&2
    exit 2
fi

# --- the audit -------------------------------------------------------------
while IFS= read -r file; do
    violations=$(scan "$file")
    if [ -n "$violations" ]; then
        echo "unjustified weak ordering in $file:"
        echo "$violations"
        fail=1
    fi
done < <(find "$root/crates" -name '*.rs' -type f | sort)

if [ "$fail" -ne 0 ]; then
    echo
    echo "error: non-SeqCst atomic ordering without an Ordering justification."
    echo "Add a \`// Ordering: ...\` comment within $window lines before the op"
    echo "naming the edge it pairs with (or why no edge is needed)."
    exit 1
fi
echo "check_ordering: every non-SeqCst atomic ordering is justified."
