//! # xsfq — clock-free alternating-logic superconducting circuit synthesis
//!
//! This is the facade crate of the `xsfq-synth` workspace, a from-scratch Rust
//! reproduction of *"Synthesis of Resource-Efficient Superconducting Circuits
//! with Clock-Free Alternating Logic"* (Volk, Papanikolaou, Zervakis,
//! Tzimpragos — DAC 2024).
//!
//! It re-exports every sub-crate under a stable module name so applications
//! can depend on a single crate:
//!
//! ```
//! use xsfq::aig::Aig;
//! use xsfq::core::SynthesisFlow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a full adder, optimize it, and map it to clock-free xSFQ cells.
//! let mut aig = Aig::new("full_adder");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let cin = aig.input("cin");
//! let (sum, cout) = xsfq::aig::build::full_adder(&mut aig, a, b, cin);
//! aig.output("sum", sum);
//! aig.output("cout", cout);
//!
//! let result = SynthesisFlow::new().run(&aig)?;
//! assert!(result.netlist().stats().jj_total > 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`aig`] | AND-Inverter graphs and optimization passes (ABC substitute), incl. the `pass` script engine |
//! | [`exec`] | vendored work-stealing executor (Chase-Lev deques + thread pool) |
//! | [`sat`] | CDCL SAT solver + combinational equivalence checking |
//! | [`cells`] | xSFQ / RSFQ standard-cell libraries (paper Table 2) |
//! | [`netlist`] | technology netlists, splitter insertion, JJ accounting |
//! | [`core`] | the paper's synthesis flow: dual-rail mapping, polarity optimization, sequential init, retiming |
//! | [`pulse`] | event-driven pulse-level simulator (PyLSE substitute) |
//! | [`spice`] | analog RCSJ Josephson-junction transient simulator (HSPICE substitute) |
//! | [`benchmarks`] | ISCAS85 / EPFL / ISCAS89 functional equivalents |
//! | [`baselines`] | clocked RSFQ baselines (PBMap-like, qSeq-like) |
//! | [`serve`] | crash-tolerant synthesis daemon: TCP + watched-dir jobs, journal, result cache |
//! | [`lint`] | static design-rule checker: netlist DRC (X001–X008), AIG/arena validators, diagnostics |

pub use xsfq_aig as aig;
pub use xsfq_baselines as baselines;
pub use xsfq_benchmarks as benchmarks;
pub use xsfq_cells as cells;
pub use xsfq_core as core;
pub use xsfq_exec as exec;
pub use xsfq_lint as lint;
pub use xsfq_netlist as netlist;
pub use xsfq_pulse as pulse;
pub use xsfq_sat as sat;
pub use xsfq_serve as serve;
pub use xsfq_spice as spice;
