//! Batch synthesis: `SynthesisFlow::run_many` over EPFL benchmark designs
//! must return exactly the reports sequential `run` calls produce (the
//! acceptance criterion of the pass-manager redesign), while scheduling
//! whole designs across the executor pool.

use xsfq::aig::pass::Script;
use xsfq::core::SynthesisFlow;

const DESIGNS: [&str; 4] = ["int2float", "dec", "priority", "cavlc"];

#[test]
fn run_many_over_epfl_matches_sequential_runs() {
    let designs: Vec<_> = DESIGNS
        .iter()
        .map(|n| xsfq::benchmarks::by_name(n).unwrap())
        .collect();
    let flow = SynthesisFlow::new().script(Script::named("fast").unwrap());
    let batch = flow.run_many(&designs).unwrap();
    assert_eq!(batch.len(), designs.len());
    for (g, r) in designs.iter().zip(&batch) {
        let single = flow.run(g).unwrap();
        assert_eq!(r.report.name, single.report.name);
        // Bit-identical optimization result…
        assert_eq!(r.optimized.nodes(), single.optimized.nodes());
        assert_eq!(r.optimized.outputs(), single.optimized.outputs());
        // …and identical mapped numbers.
        assert_eq!(r.report.aig_nodes, single.report.aig_nodes);
        assert_eq!(r.report.aig_depth, single.report.aig_depth);
        assert_eq!(r.report.la_fa, single.report.la_fa);
        assert_eq!(r.report.splitters, single.report.splitters);
        assert_eq!(r.report.jj_total, single.report.jj_total);
        assert_eq!(r.report.depth_logic, single.report.depth_logic);
        // Same pass sequence executed (telemetry row per pass).
        let names: Vec<&str> = r.report.passes.iter().map(|p| p.name.as_str()).collect();
        let single_names: Vec<&str> = single
            .report
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names, single_names);
    }
}

#[test]
fn run_many_respects_the_threads_knob() {
    let designs: Vec<_> = DESIGNS
        .iter()
        .take(2)
        .map(|n| xsfq::benchmarks::by_name(n).unwrap())
        .collect();
    let base = SynthesisFlow::new()
        .script(Script::named("fast").unwrap())
        .run_many(&designs)
        .unwrap();
    let pinned = SynthesisFlow::new()
        .script(Script::named("fast").unwrap())
        .threads(3)
        .run_many(&designs)
        .unwrap();
    for (a, b) in base.iter().zip(&pinned) {
        assert_eq!(a.optimized.nodes(), b.optimized.nodes());
        assert_eq!(a.report.jj_total, b.report.jj_total);
    }
}
