//! Sequential flow tests: the §3.2 initialization strategy (preloaded
//! first-rank DROCs + one-shot trigger) validated at pulse level against
//! the cycle-accurate golden model — including the paper's Figure 7
//! counter and the exact s27 netlist.

use xsfq::aig::{sim::SeqSim, Aig};
use xsfq::core::{OutputPolarity, SynthesisFlow};
use xsfq::pulse::Harness;

fn counter2() -> Aig {
    let mut g = Aig::new("cnt2");
    let q0 = g.latch("q0", false);
    let q1 = g.latch("q1", false);
    g.set_latch_next(q0, !q0);
    let n1 = g.xor(q1, q0);
    g.set_latch_next(q1, n1);
    g.output("out0", q0);
    g.output("out1", q1);
    g
}

fn run_sequential(aig: &Aig, inputs: &[Vec<bool>]) -> (Vec<Vec<bool>>, usize, bool) {
    let r = SynthesisFlow::new().run(aig).unwrap();
    let negs: Vec<bool> = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let res = Harness::new(r.netlist(), negs).run(inputs);
    (res.outputs, res.violations, res.reinitialized)
}

/// Figure 7: the 2-bit counter counts 00, 01, 10, 11, 00, 01 over six
/// logical cycles after the trigger cycle.
#[test]
fn figure7_counter_sequence() {
    let g = counter2();
    let inputs: Vec<Vec<bool>> = vec![vec![]; 6];
    let (outputs, violations, reinit) = run_sequential(&g, &inputs);
    assert_eq!(violations, 0, "alternating protocol must hold");
    assert!(reinit);
    let decoded: Vec<u8> = outputs
        .iter()
        .map(|o| (o[1] as u8) << 1 | o[0] as u8)
        .collect();
    assert_eq!(decoded, vec![0, 1, 2, 3, 0, 1], "Figure 7 count sequence");
}

/// A toggle with init = 1 must start at 1 (the preloading strategy encodes
/// the power-on value).
#[test]
fn init_one_latch_starts_at_one() {
    let mut g = Aig::new("toggle1");
    let q = g.latch("q", true);
    g.set_latch_next(q, !q);
    g.output("o", q);
    let (outputs, violations, _) = run_sequential(&g, &vec![vec![]; 4]);
    assert_eq!(violations, 0);
    let bits: Vec<bool> = outputs.iter().map(|o| o[0]).collect();
    assert_eq!(bits, vec![true, false, true, false]);
}

/// The exact s27 netlist agrees with the cycle-accurate golden model under
/// random stimulus.
#[test]
fn s27_matches_golden_model() {
    let g = xsfq::benchmarks::by_name("s27").unwrap();
    let mut lcg = 8927u64;
    let inputs: Vec<Vec<bool>> = (0..24)
        .map(|_| {
            (0..4)
                .map(|i| {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    lcg >> (17 + i) & 1 == 1
                })
                .collect()
        })
        .collect();
    let mut golden = SeqSim::new(&g);
    let expect: Vec<Vec<bool>> = inputs.iter().map(|v| golden.step(v)).collect();

    // The flow optimizes the logic; state encoding is preserved (latches
    // are interface), so cycle-by-cycle outputs must match.
    let (outputs, violations, reinit) = run_sequential(&g, &inputs);
    assert_eq!(violations, 0);
    assert!(reinit);
    assert_eq!(outputs, expect, "s27 pulse-level == golden model");
}

/// A small FSM benchmark equivalent survives the full flow at pulse level.
#[test]
fn s386_matches_golden_model() {
    let g = xsfq::benchmarks::by_name("s386").unwrap();
    let mut lcg = 4242u64;
    let inputs: Vec<Vec<bool>> = (0..10)
        .map(|_| {
            (0..7)
                .map(|i| {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(99);
                    lcg >> (11 + i) & 1 == 1
                })
                .collect()
        })
        .collect();
    let mut golden = SeqSim::new(&g);
    let expect: Vec<Vec<bool>> = inputs.iter().map(|v| golden.step(v)).collect();
    let (outputs, violations, reinit) = run_sequential(&g, &inputs);
    assert_eq!(violations, 0);
    assert!(reinit);
    assert_eq!(outputs, expect);
}

/// Negative control for §3.2: without the trigger, the alternating
/// invariant breaks in feedback circuits — the counter misbehaves and the
/// protocol checker notices.
#[test]
fn missing_trigger_breaks_the_counter() {
    let g = counter2();
    let r = SynthesisFlow::new().run(&g).unwrap();
    let mut sim = xsfq::pulse::PulseSim::new(r.netlist());
    let stats = r.netlist().stats();
    let t = stats.critical_delay_ps + 60.0;
    // Clock edges only — no trigger.
    for e in 1..=14 {
        sim.clock(e as f64 * t);
    }
    sim.run_until(16.0 * t);
    // The counter's q rails must NOT show the Figure 7 sequence: decode
    // cycle 1's excite window and check for a protocol anomaly (either a
    // violation, a missing pulse, or a wrong value).
    let q0 = r.netlist().outputs()[0].net;
    let excite = |k: usize| ((2 * k + 1) as f64 * t, (2 * k + 2) as f64 * t);
    let mut anomalies = 0;
    for k in 0..4 {
        let (lo, hi) = excite(k);
        let pulses = sim
            .pulses(q0)
            .iter()
            .filter(|&&p| p >= lo && p < hi)
            .count();
        let expect = k % 2; // counter bit 0 alternates 0,1,0,1
        if pulses != expect {
            anomalies += 1;
        }
    }
    assert!(
        anomalies > 0 || !sim.violations().is_empty(),
        "removing the trigger must break the §3.2 protocol"
    );
}
