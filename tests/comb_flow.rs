//! End-to-end combinational flow tests: synthesize, map, prove, and
//! pulse-simulate real circuits through the alternating protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsfq::aig::{build, opt, sim, Aig, Lit};
use xsfq::core::{OutputPolarity, PolarityMode, SynthesisFlow};
use xsfq::pulse::Harness;

fn full_adder() -> Aig {
    let mut g = Aig::new("fa");
    let a = g.input("a");
    let b = g.input("b");
    let c = g.input("cin");
    let (s, co) = build::full_adder(&mut g, a, b, c);
    g.output("s", s);
    g.output("cout", co);
    g
}

/// The paper's running example, end to end: Figure 5ii cell counts, JJ
/// totals, and functional correctness under the alternating protocol.
#[test]
fn full_adder_flow_matches_paper_and_simulates() {
    let g = full_adder();
    let r = SynthesisFlow::new().verify(true).run(&g).unwrap();
    assert_eq!(r.report.la_fa, 10);
    assert_eq!(r.report.jj_total, 58);

    let negs: Vec<bool> = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let harness = Harness::new(r.netlist(), negs);
    let vectors: Vec<Vec<bool>> = (0..8)
        .map(|p| (0..3).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let res = harness.run(&vectors);
    assert_eq!(res.violations, 0);
    assert!(res.reinitialized, "all LA/FA must return to Init (Table 1)");
    for (v, out) in vectors.iter().zip(&res.outputs) {
        let ones = v.iter().filter(|&&b| b).count();
        assert_eq!(out[0], ones % 2 == 1, "sum for {v:?}");
        assert_eq!(out[1], ones >= 2, "cout for {v:?}");
    }
}

/// Every polarity mode must produce functionally correct netlists on an
/// ALU slice (checked by SAT proof + pulse simulation).
#[test]
fn polarity_modes_agree_on_alu() {
    let mut g = Aig::new("alu");
    let a = g.input_word("a", 4);
    let b = g.input_word("b", 4);
    let sel = g.input("sel");
    let (sum, carry) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
    let xors: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| g.xor(x, y)).collect();
    let out = build::mux_word(&mut g, sel, &sum, &xors);
    g.output_word("o", &out);
    g.output("carry", carry);

    let mut rng = StdRng::seed_from_u64(2024);
    let vectors: Vec<Vec<bool>> = (0..12)
        .map(|_| (0..9).map(|_| rng.gen()).collect())
        .collect();
    let golden: Vec<Vec<bool>> = vectors.iter().map(|v| sim::eval_outputs(&g, v)).collect();

    for mode in [
        PolarityMode::DualRail,
        PolarityMode::AllPositive,
        PolarityMode::Heuristic,
    ] {
        let r = SynthesisFlow::new()
            .polarity(mode)
            .verify(true)
            .run(&g)
            .unwrap();
        let negs: Vec<bool> = match mode {
            PolarityMode::DualRail => r
                .netlist()
                .outputs()
                .iter()
                .map(|p| p.name.ends_with("_n"))
                .collect(),
            _ => r
                .mapped
                .assignment
                .outputs
                .iter()
                .map(|p| *p == OutputPolarity::Negative)
                .collect(),
        };
        let res = Harness::new(r.netlist(), negs).run(&vectors);
        assert_eq!(res.violations, 0, "{mode:?}");
        assert!(res.reinitialized, "{mode:?}");
        for (k, gold) in golden.iter().enumerate() {
            match mode {
                PolarityMode::DualRail => {
                    // Ports alternate value/complement per output.
                    for (oi, &expect) in gold.iter().enumerate() {
                        assert_eq!(res.outputs[k][2 * oi], expect, "{mode:?} v{k} o{oi} p");
                        assert_eq!(res.outputs[k][2 * oi + 1], expect, "{mode:?} v{k} o{oi} n");
                    }
                }
                _ => assert_eq!(&res.outputs[k], gold, "{mode:?} vector {k}"),
            }
        }
    }
}

/// Equation 1 (splitter count) holds exactly on mapped benchmark circuits
/// whenever every input rail is consumed.
#[test]
fn equation1_on_benchmarks() {
    for name in ["int2float", "dec", "cavlc"] {
        let aig = xsfq::benchmarks::by_name(name).unwrap();
        let r = SynthesisFlow::new().run(&aig).unwrap();
        let stats = r.netlist().stats();
        let fanouts_used = r
            .mapped
            .logical
            .fanout_counts()
            .iter()
            .take(r.mapped.logical.inputs().len())
            .filter(|&&f| f > 0)
            .count();
        let eq1 = stats.la_fa + r.mapped.logical.outputs().len() as usize - fanouts_used;
        assert_eq!(
            stats.splitters, eq1,
            "{name}: Eq.1 with consumed input rails"
        );
    }
}

/// The optimizer makes every Table 4 circuit smaller or equal, never
/// breaks equivalence (random simulation spot check).
#[test]
fn optimizer_shrinks_benchmarks() {
    for name in ["c880", "c1908", "int2float", "cavlc"] {
        let aig = xsfq::benchmarks::by_name(name).unwrap();
        let optimized = opt::optimize(&aig, opt::Effort::Fast);
        assert!(
            optimized.num_ands() <= aig.num_ands(),
            "{name}: {} -> {}",
            aig.num_ands(),
            optimized.num_ands()
        );
        assert!(
            sim::random_equiv(&aig, &optimized, 8, 7),
            "{name} broke under optimization"
        );
    }
}
