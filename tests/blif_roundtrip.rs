//! BLIF round-trip over the full in-repo EPFL suite: `write_blif →
//! read_blif → CEC` against the original (the ROADMAP "BLIF loader
//! round-trip" item), plus latch and constant-output coverage the
//! combinational suite cannot exercise.

use xsfq::aig::io::{read_blif, write_blif};
use xsfq::aig::{sim, Aig, Lit};
use xsfq::benchmarks::{self, Suite};
use xsfq::core::verify::prove_equivalent;

fn roundtrip(aig: &Aig) -> Aig {
    let mut blif = Vec::new();
    write_blif(aig, &mut blif).unwrap();
    read_blif(blif.as_slice()).unwrap_or_else(|e| panic!("{}: {e}", aig.name()))
}

/// Every combinational EPFL benchmark round-trips through BLIF and is
/// SAT-proven equivalent to the original.
#[test]
fn epfl_suite_roundtrips_equivalent() {
    let suite: Vec<_> = benchmarks::all()
        .into_iter()
        .filter(|b| b.suite == Suite::Epfl)
        .collect();
    assert!(suite.len() >= 11, "EPFL suite shrank?");
    for bench in suite {
        let aig = (bench.build)();
        let back = roundtrip(&aig);
        assert_eq!(back.num_inputs(), aig.num_inputs(), "{}", bench.name);
        assert_eq!(back.num_outputs(), aig.num_outputs(), "{}", bench.name);
        assert!(
            prove_equivalent(&aig, &back),
            "{} is not equivalent after the BLIF round trip",
            bench.name
        );
    }
}

/// Sequential designs (latches with both init values) round-trip with
/// matching state-machine behaviour.
#[test]
fn latches_roundtrip_behaviourally() {
    for name in ["s27", "s298", "s386"] {
        let aig = benchmarks::by_name(name).unwrap();
        let back = roundtrip(&aig);
        assert_eq!(back.num_latches(), aig.num_latches(), "{name}");
        for (a, b) in aig.latches().iter().zip(back.latches()) {
            assert_eq!(a.init, b.init, "{name}: latch init must survive");
        }
        let mut s1 = sim::SeqSim::new(&aig);
        let mut s2 = sim::SeqSim::new(&back);
        let mut lcg = 0x243f6a8885a308d3u64;
        for _ in 0..64 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v: Vec<bool> = (0..aig.num_inputs())
                .map(|i| lcg >> (i % 48) & 1 == 1)
                .collect();
            assert_eq!(s1.step(&v), s2.step(&v), "{name}");
        }
    }
}

/// Constant outputs (both polarities of the constant node) and an output
/// aliasing an input survive the round trip and still CEC.
#[test]
fn constant_outputs_roundtrip_equivalent() {
    let mut g = Aig::new("consts");
    let a = g.input("a");
    let b = g.input("b");
    let x = g.and(a, b);
    g.output("zero", Lit::FALSE);
    g.output("one", Lit::TRUE);
    g.output("x", x);
    g.output("alias", a);
    let back = roundtrip(&g);
    assert!(prove_equivalent(&g, &back));
}
