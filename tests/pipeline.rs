//! Pipelined-flow tests (paper §4.2.2, Table 5): DROC rank insertion,
//! retimed pipeline balance, latency-aware pulse simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsfq::aig::{build, sim, Aig, Lit};
use xsfq::core::{OutputPolarity, SynthesisFlow};
use xsfq::pulse::Harness;

fn multiplier(bits: usize) -> Aig {
    let mut g = Aig::new("mul");
    let a = g.input_word("a", bits);
    let b = g.input_word("b", bits);
    let p = build::array_multiplier(&mut g, &a, &b);
    g.output_word("p", &p);
    g
}

/// A pipelined multiplier produces the same products, `stages` cycles
/// late, with clean alternation throughout.
#[test]
fn pipelined_multiplier_is_functionally_correct() {
    let g = multiplier(4);
    for stages in [1usize, 2] {
        let r = SynthesisFlow::new()
            .pipeline_stages(stages)
            .verify(true)
            .run(&g)
            .unwrap();
        assert!(
            r.report.drocs_preload > 0,
            "{stages} stages: preloaded ranks"
        );
        assert!(r.report.drocs_plain > 0);

        let negs: Vec<bool> = r
            .mapped
            .assignment
            .outputs
            .iter()
            .map(|p| *p == OutputPolarity::Negative)
            .collect();
        let mut rng = StdRng::seed_from_u64(5 + stages as u64);
        let vectors: Vec<Vec<bool>> = (0..6)
            .map(|_| (0..8).map(|_| rng.gen()).collect())
            .collect();
        let golden: Vec<Vec<bool>> = vectors.iter().map(|v| sim::eval_outputs(&g, v)).collect();
        let res = Harness::new(r.netlist(), negs)
            .latency_cycles(stages)
            .run(&vectors);
        assert_eq!(res.violations, 0, "{stages} stages");
        for (k, gold) in golden.iter().enumerate() {
            assert_eq!(&res.outputs[k], gold, "{stages} stages, vector {k}");
        }
    }
}

/// Deeper pipelines shorten the critical path and raise the clock, while
/// JJ count grows sub-linearly (the Table 5 shape).
#[test]
fn pipelining_trades_jj_for_frequency() {
    let g = multiplier(6);
    let r0 = SynthesisFlow::new().run(&g).unwrap();
    let r1 = SynthesisFlow::new().pipeline_stages(1).run(&g).unwrap();
    let r2 = SynthesisFlow::new().pipeline_stages(2).run(&g).unwrap();
    assert!(r1.report.circuit_ghz > r0.report.circuit_ghz);
    assert!(r2.report.circuit_ghz > r1.report.circuit_ghz);
    assert!(r1.report.jj_total > r0.report.jj_total);
    assert!(r2.report.jj_total > r1.report.jj_total);
    // Sub-linear growth: doubling the DROC count must not double the JJs.
    let growth = r2.report.jj_total as f64 / r0.report.jj_total as f64;
    assert!(
        growth < 2.0,
        "JJ growth should be sub-linear in stages, got {growth:.2}×"
    );
    // Architectural frequency is half the circuit frequency (§4.2.2).
    assert!((r2.report.arch_ghz - r2.report.circuit_ghz / 2.0).abs() < 1e-9);
}

/// Ranks register primary outputs: every PO cone passes through exactly
/// 2 × stages DROC ranks, so the decode latency equals the stage count.
#[test]
fn pipelined_adder_latency_matches_stage_count() {
    let mut g = Aig::new("add6");
    let a = g.input_word("a", 6);
    let b = g.input_word("b", 6);
    let (s, c) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
    g.output_word("s", &s);
    g.output("c", c);
    let stages = 2;
    let r = SynthesisFlow::new()
        .pipeline_stages(stages)
        .run(&g)
        .unwrap();
    let negs: Vec<bool> = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let vectors: Vec<Vec<bool>> = vec![
        vec![
            true, false, true, false, true, false, false, true, true, false, false, true,
        ],
        vec![false; 12],
        vec![true; 12],
    ];
    let golden: Vec<Vec<bool>> = vectors.iter().map(|v| sim::eval_outputs(&g, v)).collect();
    let res = Harness::new(r.netlist(), negs)
        .latency_cycles(stages)
        .run(&vectors);
    assert_eq!(res.violations, 0);
    assert_eq!(res.outputs, golden);
}
