//! Property-based tests over the core data structures and flow invariants.

use proptest::prelude::*;
use xsfq::aig::{build, opt, sim, tt::TruthTable, Aig, Lit};
use xsfq::core::{map_xsfq, MapOptions, PolarityMode};
use xsfq::sat::cec;

/// Build a random DAG circuit from a recipe of (op, operand indices).
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize, outputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    for o in 0..outputs {
        let lit = pool[pool.len() - 1 - (o % pool.len().min(8))];
        g.output(format!("y{o}"), lit);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Optimization never grows the graph and always preserves the
    /// function (proved by SAT, not just simulated).
    #[test]
    fn optimization_preserves_function(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 4..40),
        inputs in 2usize..6,
    ) {
        let g = circuit_from_recipe(&recipe, inputs, 3);
        let o = opt::optimize(&g, opt::Effort::Fast);
        prop_assert!(o.num_ands() <= g.num_ands());
        prop_assert!(cec::equivalent(&g, &o));
    }

    /// The mapped xSFQ netlist always reconstructs to the source function,
    /// and its physical form satisfies the single-sink (splitter) law.
    #[test]
    fn mapping_is_sound(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 4..28),
        inputs in 2usize..5,
        mode_sel in 0u8..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs, 2);
        let mode = match mode_sel {
            0 => PolarityMode::DualRail,
            1 => PolarityMode::AllPositive,
            _ => PolarityMode::Heuristic,
        };
        let m = map_xsfq(&g, &MapOptions { polarity: mode, ..Default::default() });
        // Single-sink law on the physical netlist.
        prop_assert!(m.physical.fanout_counts().iter().all(|&f| f <= 1));
        // Functional soundness (SAT proof via the verify module).
        prop_assert!(xsfq::core::verify::verify_mapping(&g, &m, mode).is_ok());
        // Heuristic polarity never exceeds the all-positive cost.
        if mode == PolarityMode::Heuristic {
            let ap = map_xsfq(&g, &MapOptions { polarity: PolarityMode::AllPositive, ..Default::default() });
            prop_assert!(m.physical.stats().la_fa <= ap.physical.stats().la_fa);
        }
    }

    /// ISOP + factoring round-trips arbitrary truth tables.
    #[test]
    fn synthesize_roundtrips_any_function(bits in any::<u16>()) {
        let tt = TruthTable::from_word(4, bits as u64);
        let mut g = Aig::new("t");
        let leaves: Vec<Lit> = (0..4).map(|i| g.input(format!("x{i}"))).collect();
        let out = xsfq::aig::synth::synthesize(&mut g, &tt, &leaves);
        g.output("f", out);
        for p in 0..16usize {
            let inputs: Vec<bool> = (0..4).map(|i| p >> i & 1 == 1).collect();
            let got = sim::eval_outputs(&g, &inputs)[0];
            prop_assert_eq!(got, bits >> p & 1 == 1);
        }
    }

    /// The adder builder matches machine arithmetic for arbitrary widths
    /// and operands.
    #[test]
    fn adder_matches_arithmetic(a in any::<u32>(), b in any::<u32>(), width in 1usize..16) {
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut g = Aig::new("add");
        let aw = g.input_word("a", width);
        let bw = g.input_word("b", width);
        let (s, c) = build::ripple_add(&mut g, &aw, &bw, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        let mut inputs = Vec::new();
        for i in 0..width { inputs.push(a >> i & 1 == 1); }
        for i in 0..width { inputs.push(b >> i & 1 == 1); }
        let out = sim::eval_outputs(&g, &inputs);
        let mut got = 0u64;
        for (i, &bit) in out.iter().enumerate() { got |= (bit as u64) << i; }
        prop_assert_eq!(got, a as u64 + b as u64);
    }

    /// NPN canonicalization: equivalent-under-NPN tables share canon forms.
    #[test]
    fn npn_canon_is_invariant(bits in any::<u16>(), perm in 0usize..24, flips in 0u8..16, out_neg: bool) {
        use xsfq::aig::tt::{apply_npn4, npn_canon4, NpnTransform};
        let tf = NpnTransform { perm_idx: perm as u8, flips, out_neg };
        let transformed = apply_npn4(bits, tf);
        let (c1, _) = npn_canon4(bits);
        let (c2, _) = npn_canon4(transformed);
        prop_assert_eq!(c1, c2, "NPN class must be invariant under NPN transforms");
    }
}
