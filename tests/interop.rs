//! Interop surfaces: BLIF import → flow → Verilog/DOT/Liberty export, and
//! the benchmark registry's end-to-end health on small circuits.

use xsfq::aig::io::{read_blif, write_blif};
use xsfq::aig::sim;
use xsfq::cells::{liberty, CellLibrary};
use xsfq::core::SynthesisFlow;
use xsfq::netlist::writers;

/// A user with the original benchmark files loads them through BLIF; the
/// same flow applies. Round-trip a design through BLIF and check the
/// mapped result is identical.
#[test]
fn blif_import_feeds_the_flow() {
    let aig = xsfq::benchmarks::by_name("s27").unwrap();
    let mut blif = Vec::new();
    write_blif(&aig, &mut blif).unwrap();
    let back = read_blif(blif.as_slice()).unwrap();
    assert_eq!(back.num_latches(), aig.num_latches());

    let direct = SynthesisFlow::new().run(&aig).unwrap();
    let via_blif = SynthesisFlow::new().run(&back).unwrap();
    assert_eq!(direct.report.la_fa, via_blif.report.la_fa);
    assert_eq!(direct.report.jj_total, via_blif.report.jj_total);

    // Behaviour preserved through the round trip.
    let mut s1 = sim::SeqSim::new(&aig);
    let mut s2 = sim::SeqSim::new(&back);
    let mut lcg = 5u64;
    for _ in 0..32 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(7);
        let v: Vec<bool> = (0..4).map(|i| lcg >> (13 + i) & 1 == 1).collect();
        assert_eq!(s1.step(&v), s2.step(&v));
    }
}

/// Every export format produces syntactically plausible output for a
/// mapped benchmark.
#[test]
fn exports_are_well_formed() {
    let aig = xsfq::benchmarks::by_name("int2float").unwrap();
    let r = SynthesisFlow::new().run(&aig).unwrap();

    let mut v = Vec::new();
    writers::write_verilog(r.netlist(), &mut v).unwrap();
    let verilog = String::from_utf8(v).unwrap();
    assert!(verilog.contains("module int2float"));
    assert!(verilog.contains("endmodule"));
    assert_eq!(
        verilog.matches(" LA ").count(),
        r.report.la_fa
            - r.netlist()
                .cells()
                .iter()
                .filter(|c| c.kind == xsfq::cells::CellKind::Fa)
                .count(),
        "every LA cell instantiated"
    );

    let mut d = Vec::new();
    writers::write_dot(r.netlist(), &mut d).unwrap();
    let dot = String::from_utf8(d).unwrap();
    assert!(dot.starts_with("digraph"));

    let mut l = Vec::new();
    liberty::write_liberty(&CellLibrary::xsfq_abutted(), &mut l).unwrap();
    let lib = String::from_utf8(l).unwrap();
    assert!(lib.contains("cell (LA)"));
    assert!(lib.matches('{').count() == lib.matches('}').count());
}

/// Flow health across a slice of every suite: non-trivial JJ counts,
/// clock-free combinational mappings, DROC pairs on sequential ones.
#[test]
fn registry_circuits_flow_cleanly() {
    for name in ["c432", "router", "mem_ctrl", "s510", "s820"] {
        let aig = xsfq::benchmarks::by_name(name).unwrap();
        let r = SynthesisFlow::new().run(&aig).unwrap();
        assert!(r.report.jj_total > 100, "{name}: {}", r.report.jj_total);
        if aig.num_latches() == 0 {
            assert_eq!(r.report.jj_clock_tree, 0, "{name} must be clock-free");
        } else {
            assert_eq!(
                r.report.drocs_plain + r.report.drocs_preload,
                2 * aig.num_latches(),
                "{name}: one DROC pair per flip-flop"
            );
            assert!(r.report.jj_clock_tree > 0);
        }
    }
}
