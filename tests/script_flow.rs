//! Scripted-flow correctness: any permutation of registered passes —
//! including `fraig` — must preserve the function of the design, proven by
//! SAT CEC against the source AIG, and the full flow over a scripted
//! recipe must still pass post-mapping verification.

use proptest::prelude::*;

use xsfq::aig::pass::{PassCtx, Script};
use xsfq::aig::{Aig, Lit};
use xsfq::core::{flow_registry, SynthesisFlow};
use xsfq::exec::ThreadPool;
use xsfq::sat::cec;

/// Every pass name a script can draw from (the flow registry set).
const TOKENS: [&str; 7] = ["b", "rw", "rwz", "rf", "rf -K 6", "c", "f"];

fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", pool[n / 2]);
    g.output("o2", !pool[2 * n / 3]);
    g
}

/// Build a script string from token picks, optionally wrapping a suffix of
/// the passes in a `repeat` block to exercise the keep-best loop.
fn script_text(picks: &[usize], repeat_split: usize) -> String {
    let names: Vec<&str> = picks.iter().map(|&i| TOKENS[i % TOKENS.len()]).collect();
    let split = repeat_split % (names.len() + 1);
    if split == 0 || split == names.len() {
        names.join("; ")
    } else {
        format!(
            "{}; repeat 2 {{ {} }}",
            names[..split].join("; "),
            names[split..].join("; ")
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random permutation of script passes yields a CEC-equivalent AIG.
    #[test]
    fn random_scripts_preserve_equivalence(
        recipe in prop::collection::vec((any::<u8>(), 0usize..48, 0usize..48), 6..60),
        inputs in 2usize..7,
        picks in prop::collection::vec(0usize..TOKENS.len(), 1..7),
        repeat_split in 0usize..8,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let text = script_text(&picks, repeat_split);
        let compiled = Script::parse(&text)
            .unwrap_or_else(|e| panic!("script `{text}` must parse: {e}"))
            .compile(&flow_registry())
            .unwrap_or_else(|e| panic!("script `{text}` must compile: {e}"));
        let pool = ThreadPool::new(2);
        let out = compiled.run(&g, &mut PassCtx::new(&pool));
        prop_assert!(
            cec::check_equivalence(&g, &out).is_equivalent(),
            "script `{}` broke the function",
            text
        );
        prop_assert_eq!(g.num_inputs(), out.num_inputs());
        prop_assert_eq!(g.num_outputs(), out.num_outputs());
    }

    /// The same scripted recipes drive the whole flow: mapping must verify.
    #[test]
    fn scripted_flows_verify_after_mapping(
        recipe in prop::collection::vec((any::<u8>(), 0usize..32, 0usize..32), 6..40),
        inputs in 2usize..6,
        picks in prop::collection::vec(0usize..TOKENS.len(), 1..5),
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let text = script_text(&picks, 0);
        let r = SynthesisFlow::new()
            .script_str(&text)
            .unwrap()
            .verify(true)
            .run(&g)
            .unwrap_or_else(|e| panic!("scripted flow `{text}` failed: {e}"));
        prop_assert_eq!(r.report.passes.len(), picks.len(), "one stat per pass");
    }
}
